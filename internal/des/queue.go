package des

import "switchboard/internal/model"

// Event priorities at an equal instant. Departures run first so capacity
// freed at time t is visible to arrivals at t (the invariant internal/sim
// has always kept); fleet events (failure, recovery, detection sweeps) run
// between, so a DC that fails at t rejects arrivals at t but still sees the
// departures that emptied it.
const (
	PriDepart uint8 = iota
	PriFleet
	PriArrive
)

// Event kinds. KindReplayStart/KindReplayEnd carry *model.CallRecord
// payloads for trace replay (internal/sim schedules through the same queue);
// the remaining kinds carry engine payloads.
const (
	KindArrive uint8 = iota
	KindDepart
	KindDCFail
	KindDCRecover
	KindSweep
	KindReplayStart
	KindReplayEnd
)

// Event is one scheduled occurrence. The total order is (At, Pri, Seq):
// virtual time first, then the priority class, then the stable sequence
// number the producer assigned — never pointer values or map order.
type Event struct {
	// At is virtual nanoseconds since the run origin.
	At int64
	// Seq breaks ties deterministically. The engine assigns push order;
	// internal/sim assigns call IDs, reproducing its historical
	// equal-instant ordering.
	Seq uint64
	Pri uint8
	// Kind selects the payload field below.
	Kind uint8
	// DC is the datacenter a fleet event concerns.
	DC int32
	// Call is the engine payload (arrival/departure bookkeeping).
	Call *Call
	// Rec is the replay payload (internal/sim's record events).
	Rec *model.CallRecord
}

// Queue is a 4-ary min-heap of events. The wider fan-out halves the sift
// depth of a binary heap and keeps a node's children in adjacent cache
// lines, which is what Pop's cost is made of once the pending set outgrows
// L2 (a peak-hour fleet holds ~10^5 in-flight calls). The heap shape does
// not affect determinism: (At, Pri, Seq) is a strict total order, so every
// correct heap pops the identical sequence. Not safe for concurrent use: a
// simulation is single-threaded by design (the shared clock is the whole
// point), and the engine's throughput target rules out locking.
type Queue struct {
	heap    []Event
	pushed  uint64
	popped  uint64
	maxSeen int
}

// NewQueue returns a queue with capacity pre-allocated for about n events.
func NewQueue(n int) *Queue {
	if n < 16 {
		n = 16
	}
	return &Queue{heap: make([]Event, 0, n)}
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Pushed and Popped count lifetime traffic; their difference minus Len is
// the engine's dropped-event check (zero on a clean drain).
func (q *Queue) Pushed() uint64 { return q.pushed }

// Popped returns how many events have been popped.
func (q *Queue) Popped() uint64 { return q.popped }

// MaxLen returns the high-water mark of pending events.
func (q *Queue) MaxLen() int { return q.maxSeen }

// eventLess orders events by (At, Pri, Seq).
func eventLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Pri != b.Pri {
		return a.Pri < b.Pri
	}
	return a.Seq < b.Seq
}

// less orders heap slots i and j.
func (q *Queue) less(i, j int) bool {
	return eventLess(&q.heap[i], &q.heap[j])
}

// Push schedules ev. The sift-up moves displaced parents into the hole and
// writes ev once at its final slot — per level that is one 40-byte store
// instead of a three-way swap's two, which matters when the heap has
// outgrown cache.
//
//sblint:hotpath
func (q *Queue) Push(ev Event) {
	q.pushed++
	q.heap = append(q.heap, ev) //sblint:allowalloc(event queue growth; amortized by NewQueue preallocation)
	if len(q.heap) > q.maxSeen {
		q.maxSeen = len(q.heap)
	}
	// Sift up (hole insertion).
	i := len(q.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(&ev, &q.heap[parent]) {
			break
		}
		q.heap[i] = q.heap[parent]
		i = parent
	}
	q.heap[i] = ev
}

// Pop removes and returns the earliest event; ok is false on an empty queue.
// The sift-down walks the displaced last element toward the leaves as a hole,
// comparing it against the least of each slot's four children directly.
//
//sblint:hotpath
func (q *Queue) Pop() (ev Event, ok bool) {
	n := len(q.heap)
	if n == 0 {
		return Event{}, false
	}
	q.popped++
	ev = q.heap[0]
	n--
	last := q.heap[n]
	q.heap[n] = Event{} // release payload pointers
	q.heap = q.heap[:n]
	if n == 0 {
		return ev, true
	}
	// Sift down (hole insertion).
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		end := first + 4
		if end > n {
			end = n
		}
		best := first
		for c := first + 1; c < end; c++ {
			if q.less(c, best) {
				best = c
			}
		}
		if !eventLess(&q.heap[best], &last) {
			break
		}
		q.heap[i] = q.heap[best]
		i = best
	}
	q.heap[i] = last
	return ev, true
}
