package des

import "math"

// Stream is a seeded splitmix64 generator. Each simulated entity (workload
// arrivals, each policy, failure timing, trace latency synthesis) owns its
// own stream, derived from the run seed and a fixed stream ID, so adding a
// consumer never perturbs the draws another entity sees — the property that
// keeps "same seed ⇒ same trace" stable as the engine grows.
type Stream struct {
	state uint64
}

// Stream IDs for the engine's built-in entities. New consumers take fresh
// IDs; renumbering existing ones is a determinism break.
const (
	StreamWorkload uint64 = iota + 1
	StreamPolicy
	StreamFailover
	StreamTraceIDs
	StreamTraceLatency
)

// NewStream derives an independent stream from (seed, id). The golden-gamma
// offset decorrelates streams whose ids differ by small integers.
func NewStream(seed int64, id uint64) Stream {
	return Stream{state: mix64(uint64(seed)) ^ mix64(id*0x9e3779b97f4a7c15)}
}

// mix64 is the splitmix64 output permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Uint64 steps the sequence.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// Float64 returns a uniform draw in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). n must be positive.
func (s *Stream) Intn(n int) int {
	return int(s.Uint64() % uint64(n))
}

// Exp returns an exponential draw with the given mean (inverse-CDF method;
// the 1-u flip keeps the argument of Log strictly positive).
func (s *Stream) Exp(mean float64) float64 {
	return -mean * math.Log(1-s.Float64())
}
