package des

import (
	"bytes"
	"testing"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/model"
)

// testRig builds a 12-DC fleet over the default world with a synthetic
// workload, provisioned at headroom x the workload's expected peak.
func testRig(t *testing.T, seed int64, calls int, headroom float64) (*Fleet, *SynthSource) {
	t.Helper()
	w := geo.DefaultWorld()
	src, err := NewSynthSource(w, SynthConfig{Seed: seed, Calls: calls})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(w, src.Configs(), 120)
	if err != nil {
		t.Fatal(err)
	}
	cores, gbps := src.ExpectedPeakLoad(f)
	for i := range cores {
		cores[i] *= headroom
	}
	for i := range gbps {
		gbps[i] *= headroom
	}
	if err := f.SetCapacity(cores, gbps); err != nil {
		t.Fatal(err)
	}
	return f, src
}

// TestEngineConservation checks the run's books balance: every arrival is
// placed or rejected, every event is accounted for, and the queue drains.
func TestEngineConservation(t *testing.T) {
	f, src := testRig(t, 11, 20000, 1.25)
	res, err := Run(Config{Fleet: f, Source: src, Placement: LowestACL{}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls != 20000 {
		t.Fatalf("Calls = %d, want 20000", res.Calls)
	}
	if res.Placed+res.Rejected != res.Calls {
		t.Fatalf("Placed(%d)+Rejected(%d) != Calls(%d)", res.Placed, res.Rejected, res.Calls)
	}
	if res.Rejected != 0 {
		t.Fatalf("nil admission rejected %d calls", res.Rejected)
	}
	if res.DroppedEvents != 0 {
		t.Fatalf("DroppedEvents = %d, want 0", res.DroppedEvents)
	}
	// Each placed call is one arrival + one departure.
	if want := 2 * res.Placed; res.Events != want {
		t.Fatalf("Events = %d, want %d", res.Events, want)
	}
	if res.PeakConcurrent <= 0 || res.MeanACLms <= 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.RegretMeanMs < 0 {
		t.Fatalf("negative regret %v", res.RegretMeanMs)
	}
	// Lazy arrival generation: queue depth tracks concurrency, not calls.
	if res.MaxQueueLen >= 20000/2 {
		t.Fatalf("MaxQueueLen = %d; arrivals are not being generated lazily", res.MaxQueueLen)
	}
}

// TestEnginePoliciesDiffer runs the same workload under all built-in
// policies; they must agree on the books and disagree on behavior.
func TestEnginePoliciesDiffer(t *testing.T) {
	// Tight capacity so load-aware policies actually deviate.
	f, _ := testRig(t, 13, 20000, 0.6)
	regret := map[string]float64{}
	for _, name := range []string{"lowest-acl", "least-loaded", "power-of-two", "best-fit"} {
		p, ok := PlacementByName(name)
		if !ok {
			t.Fatalf("unknown policy %q", name)
		}
		src2, err := NewSynthSource(f.World, SynthConfig{Seed: 13, Calls: 20000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{Fleet: f, Source: src2, Placement: p, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		if res.Placed != res.Calls || res.DroppedEvents != 0 {
			t.Fatalf("%s: bad books %+v", name, res)
		}
		regret[name] = res.RegretMeanMs
	}
	if regret["lowest-acl"] >= regret["least-loaded"] {
		t.Fatalf("lowest-acl regret (%v) should be below least-loaded (%v)",
			regret["lowest-acl"], regret["least-loaded"])
	}
}

// TestEngineAdmissionGate checks CapacityGate rejects when nothing fits.
func TestEngineAdmissionGate(t *testing.T) {
	f, src := testRig(t, 17, 20000, 0.2) // severely under-provisioned
	res, err := Run(Config{Fleet: f, Source: src, Placement: LowestACL{}, Admission: CapacityGate{}, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 {
		t.Fatal("under-provisioned fleet rejected nothing")
	}
	if res.Overflowed != 0 {
		t.Fatalf("gated run overflowed %d placements", res.Overflowed)
	}
	if res.Placed+res.Rejected != res.Calls {
		t.Fatalf("books: %+v", res)
	}
}

// TestEngineFailover fails a DC mid-run and checks calls migrate, the
// disruption accounting moves with the detection delay, and the DC takes
// traffic again after recovery.
func TestEngineFailover(t *testing.T) {
	run := func(detect time.Duration) Result {
		f, src := testRig(t, 19, 30000, 1.25)
		// Fail the busiest DC mid-morning, recover it two hours later.
		failures := []DCFailure{{DC: 0, At: 9 * time.Hour, Recover: 11 * time.Hour}}
		res, err := Run(Config{
			Fleet: f, Source: src, Placement: LowestACL{},
			Failover: FixedDetection{Delay: detect},
			Failures: failures, Seed: 19,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(5 * time.Second)
	slow := run(5 * time.Minute)
	if fast.Migrated == 0 {
		t.Fatal("no calls migrated off the failed DC")
	}
	if fast.DroppedEvents != 0 || slow.DroppedEvents != 0 {
		t.Fatalf("dropped events: fast=%d slow=%d", fast.DroppedEvents, slow.DroppedEvents)
	}
	if fast.DisruptedCallSeconds <= 0 {
		t.Fatal("no disruption recorded")
	}
	// Slower detection strictly increases per-call outage time.
	fastPer := fast.DisruptedCallSeconds / float64(fast.Migrated)
	slowPer := slow.DisruptedCallSeconds / float64(slow.Migrated)
	if slowPer <= fastPer {
		t.Fatalf("per-call disruption: slow detection %v <= fast %v", slowPer, fastPer)
	}
}

// TestEngineTraceCounts checks sampling arithmetic and that tracing does not
// perturb the simulation outcome.
func TestEngineTraceCounts(t *testing.T) {
	f, src := testRig(t, 23, 5000, 1.25)
	var buf bytes.Buffer
	tw := NewTrace(&buf, 23, time.Date(2022, 9, 5, 0, 0, 0, 0, time.UTC), 100)
	traced, err := Run(Config{Fleet: f, Source: src, Placement: LowestACL{}, Seed: 23, Trace: tw})
	if err != nil {
		t.Fatal(err)
	}
	if traced.TraceLines == 0 || buf.Len() == 0 {
		t.Fatal("no trace emitted")
	}
	src2, err := NewSynthSource(f.World, SynthConfig{Seed: 23, Calls: 5000})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(Config{Fleet: f, Source: src2, Placement: LowestACL{}, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	plain.TraceLines = traced.TraceLines
	if traced != plain {
		t.Fatalf("tracing changed the outcome:\n traced: %+v\n plain:  %+v", traced, plain)
	}
}

// TestRecordSourceReplay drives the engine from explicit call records and
// checks the replay books balance and virtual times anchor at the earliest
// record.
func TestRecordSourceReplay(t *testing.T) {
	w := geo.DefaultWorld()
	origin := time.Date(2022, 9, 5, 0, 0, 0, 0, time.UTC)
	var recs []*model.CallRecord
	for i := 0; i < 64; i++ {
		country := w.Countries()[i%len(w.Countries())].Code
		recs = append(recs, &model.CallRecord{
			ID:       uint64(100 + i),
			Start:    origin.Add(time.Duration(i) * time.Minute),
			Duration: time.Duration(5+i%10) * time.Minute,
			Legs: []model.LegRecord{
				{Country: country, Media: model.Video},
				{Country: country, Media: model.Audio},
			},
		})
	}
	src, err := NewRecordSource(recs)
	if err != nil {
		t.Fatal(err)
	}
	if !src.Origin().Equal(origin) {
		t.Fatalf("Origin = %v, want %v", src.Origin(), origin)
	}
	f, err := NewFleet(w, src.Configs(), 120)
	if err != nil {
		t.Fatal(err)
	}
	cores := make([]float64, f.NumDCs())
	for i := range cores {
		cores[i] = 100
	}
	if err := f.SetCapacity(cores, make([]float64, len(f.CapGbps))); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Fleet: f, Source: src, Placement: LowestACL{}, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls != 64 || res.Placed != 64 || res.DroppedEvents != 0 {
		t.Fatalf("replay books: %+v", res)
	}
	if res.RegretMeanMs != 0 {
		t.Fatalf("lowest-acl with slack capacity should have zero regret, got %v", res.RegretMeanMs)
	}
}
