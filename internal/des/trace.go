package des

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"time"

	"switchboard/internal/obs/span"
)

// Trace writes the engine's decision trace as span JSONL — the exact record
// format the live controller's -span-log emits and cmd/sbtrace reads, so one
// toolchain analyzes production and simulation alike. Spans are constructed
// directly (span.Tracer stamps wall-clock time, which a deterministic engine
// must never touch): timestamps are origin + virtual ns, IDs come from a
// seeded stream, and control-plane leg durations (controller.start, kv.HSET,
// controller.persist) are synthesized from a second stream calibrated to the
// live path's latencies. Same seed, same workload ⇒ byte-identical output.
//
// Each sampled call also carries counterfactual "sim.whatif" children: for
// every latency-feasible candidate DC, the ACL delta and whether the call
// would have fit there at decision time — the "what if this call had been
// placed at DC j" record a live controller cannot afford to emit.
type Trace struct {
	w      *bufio.Writer
	origin time.Time
	ids    Stream
	lat    Stream
	every  uint64
	lines  uint64
	err    error
}

// NewTrace returns a writer sampling one call in every `every` (minimum 1).
// origin anchors virtual time zero; it is normalized to UTC so the output
// does not depend on the host time zone.
func NewTrace(w io.Writer, seed int64, origin time.Time, every int) *Trace {
	if every < 1 {
		every = 1
	}
	return &Trace{
		w:      bufio.NewWriterSize(w, 1<<16),
		origin: origin.UTC(),
		ids:    NewStream(seed, StreamTraceIDs),
		lat:    NewStream(seed, StreamTraceLatency),
		every:  uint64(every),
	}
}

// Sampled reports whether call id is in the sample. Deterministic in the call
// ID alone, so the same calls are sampled under every policy — traces from a
// sweep are directly comparable.
func (t *Trace) Sampled(id uint64) bool {
	return t != nil && id%t.every == 0
}

// Lines returns the number of records written.
func (t *Trace) Lines() uint64 {
	if t == nil {
		return 0
	}
	return t.lines
}

// Err returns the first write error.
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// Close flushes buffered records.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

func (t *Trace) nextID() span.ID {
	for {
		if id := span.ID(t.ids.Uint64()); id != 0 {
			return id
		}
	}
}

// write marshals and appends one record.
//
//sblint:allowalloc(record encoding; only reached from sampled trace emission)
func (t *Trace) write(r *span.Record) {
	b, err := json.Marshal(r)
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
	t.lines++
}

func (t *Trace) at(virtualNs int64) time.Time {
	return t.origin.Add(time.Duration(virtualNs))
}

// latency draws a synthetic control-plane leg duration: floor + Exp(mean).
func (t *Trace) latency(floor, mean time.Duration) time.Duration {
	return floor + time.Duration(t.lat.Exp(float64(mean)))
}

// EmitCall writes one sampled placement decision: a sim.call root over the
// live controller's leg names, plus per-candidate counterfactuals. status is
// "" for a clean placement, "overflow" when the call was hosted over
// capacity, "rejected" when admission refused it (dc is then the DC the
// policy would have chosen). Children are written before the root, matching
// the live exporter's end-order stream.
//
//sblint:allowalloc(trace emission runs only for sampled calls; sampling keeps it off the per-event budget)
func (t *Trace) EmitCall(f *Fleet, u *Usage, id uint64, atNs int64, c, dc int32, cands []int32, policy, status string) {
	if t == nil {
		return
	}
	traceID := t.nextID()
	rootID := t.nextID()
	rootStart := t.at(atNs)

	// controller.start — the placement decision leg.
	startID := t.nextID()
	startDur := t.latency(50*time.Microsecond, 120*time.Microsecond)
	startAt := rootStart.Add(5 * time.Microsecond)

	// Counterfactual children: what if this call had been hosted at each
	// feasible candidate instead.
	chosenACL := f.ACL(c, dc)
	cores := f.Cores(c)
	whatAt := startAt.Add(2 * time.Microsecond)
	for _, x := range cands {
		wiDur := t.latency(200*time.Nanosecond, 500*time.Nanosecond)
		fits := u.FitsCompute(x, cores)
		t.write(&span.Record{
			Trace:    traceID,
			Span:     t.nextID(),
			Parent:   startID,
			Name:     "sim.whatif",
			Start:    whatAt,
			Duration: wiDur,
			Attrs: span.Attrs{
				{Key: "dc", Value: f.DCName(x)},
				{Key: "acl_ms", Value: formatMs(f.ACL(c, x))},
				{Key: "delta_ms", Value: formatMs(f.ACL(c, x) - chosenACL)},
				{Key: "fits", Value: strconv.FormatBool(fits)},
			},
		})
		whatAt = whatAt.Add(wiDur)
	}
	t.write(&span.Record{
		Trace:    traceID,
		Span:     startID,
		Parent:   rootID,
		Name:     "controller.start",
		Start:    startAt,
		Duration: startDur,
		Attrs: span.Attrs{
			{Key: "dc", Value: f.DCName(dc)},
			{Key: "policy", Value: policy},
			{Key: "acl_ms", Value: formatMs(chosenACL)},
		},
	})

	rootDur := startDur + 45*time.Microsecond
	rootAttrs := span.Attrs{
		{Key: "call", Value: strconv.FormatUint(id, 10)},
		{Key: "config", Value: strconv.FormatInt(int64(c), 10)},
		{Key: "dc", Value: f.DCName(dc)},
		{Key: "policy", Value: policy},
		{Key: "acl_ms", Value: formatMs(chosenACL)},
	}
	rootStatus := ""
	switch status {
	case "rejected":
		// Admission refused the call: no persist leg, error status.
		rootStatus = "error"
		rootAttrs = append(rootAttrs, span.Attr{Key: "error", Value: "admission rejected"})
	default:
		// controller.persist with its kv.HSET leg, as the live path records.
		persistID := t.nextID()
		hsetDur := t.latency(180*time.Microsecond, 350*time.Microsecond)
		persistDur := hsetDur + t.latency(80*time.Microsecond, 60*time.Microsecond)
		persistAt := startAt.Add(startDur + 10*time.Microsecond)
		t.write(&span.Record{
			Trace:    traceID,
			Span:     t.nextID(),
			Parent:   persistID,
			Name:     "kv.HSET",
			Start:    persistAt.Add(20 * time.Microsecond),
			Duration: hsetDur,
		})
		t.write(&span.Record{
			Trace:    traceID,
			Span:     persistID,
			Parent:   rootID,
			Name:     "controller.persist",
			Start:    persistAt,
			Duration: persistDur,
		})
		rootDur += persistDur + 10*time.Microsecond
		if status == "overflow" {
			rootAttrs = append(rootAttrs, span.Attr{Key: "overflow", Value: "true"})
		}
	}
	t.write(&span.Record{
		Trace:    traceID,
		Span:     rootID,
		Name:     "sim.call",
		Start:    rootStart,
		Duration: rootDur,
		Status:   rootStatus,
		Attrs:    rootAttrs,
	})
}

// EmitFailover writes one controller.faildc record for a detection sweep:
// DC dc was detected down at virtual time atNs, detectNs after it actually
// failed, and migrated calls were re-placed onto survivors.
//
//sblint:allowalloc(trace emission runs once per detection sweep, off the per-event budget)
func (t *Trace) EmitFailover(f *Fleet, atNs int64, dc int32, migrated int, detectNs int64) {
	if t == nil {
		return
	}
	dur := t.latency(time.Millisecond, 2*time.Millisecond) +
		time.Duration(migrated)*50*time.Microsecond
	t.write(&span.Record{
		Trace:    t.nextID(),
		Span:     t.nextID(),
		Name:     "controller.faildc",
		Start:    t.at(atNs),
		Duration: dur,
		Attrs: span.Attrs{
			{Key: "dc", Value: f.DCName(dc)},
			{Key: "migrated", Value: strconv.Itoa(migrated)},
			{Key: "detect_ms", Value: formatMs(float64(detectNs) / 1e6)},
		},
	})
}

// formatMs renders a millisecond value with fixed precision (stable bytes).
//
//sblint:allowalloc(attribute formatting; only reached from sampled trace emission)
func formatMs(ms float64) string {
	return strconv.FormatFloat(ms, 'f', 2, 64)
}
