package des

import (
	"fmt"
	"math"
	"sort"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/model"
)

// Arrival is one call entering the simulation: a config index into the
// fleet's universe, a virtual start time, and a duration.
type Arrival struct {
	ID  uint64
	At  int64 // virtual ns since the run origin
	Dur int64 // call duration, ns
	Cfg int32
}

// Source produces the arrival stream, one call at a time in nondecreasing At
// order. Pull-based generation keeps the event queue small: the engine holds
// exactly one pending arrival at any moment, so a 10M-call run never
// materializes 10M arrival events.
type Source interface {
	// Next fills a with the next arrival, returning false at end of stream.
	Next(a *Arrival) bool
	// Configs returns the config universe arrivals index into.
	Configs() []model.CallConfig
}

// SynthConfig parameterizes the built-in synthetic workload.
type SynthConfig struct {
	// Seed drives every draw.
	Seed int64
	// Calls is the total number of calls to generate.
	Calls int
	// CallsPerDay shapes the arrival rate (the diurnal curve integrates to
	// this many calls per simulated day). Zero defaults to Calls, i.e. a
	// one-day run.
	CallsPerDay int
	// Configs is the size of the generated config universe (0: 64).
	Configs int
	// MinDur/MeanDur/MaxDur bound call durations (0: 60s / 8m / 4h).
	MinDur, MeanDur, MaxDur time.Duration
}

func (c *SynthConfig) withDefaults() SynthConfig {
	out := *c
	if out.Configs <= 0 {
		out.Configs = 64
	}
	if out.CallsPerDay <= 0 {
		out.CallsPerDay = out.Calls
	}
	if out.MinDur <= 0 {
		out.MinDur = time.Minute
	}
	if out.MeanDur <= 0 {
		out.MeanDur = 8 * time.Minute
	}
	if out.MaxDur <= 0 {
		out.MaxDur = 4 * time.Hour
	}
	return out
}

// SynthSource generates a deterministic Teams-like workload directly in the
// engine's units: a zipf-weighted config universe drawn from the geo world's
// demand shares, a diurnal arrival-rate curve, and exponential interarrivals
// and durations. It is the million-call counterpart of internal/trace — that
// generator builds full per-leg call records for the provisioning pipeline;
// this one builds four-field arrivals at tens of millions per second.
type SynthSource struct {
	cfg      SynthConfig
	cfgs     []model.CallConfig
	cumw     []float64 // cumulative config weights, normalized to 1
	slotRate []float64 // arrivals per ns, per slot of day
	rng      Stream
	next     uint64
	now      int64
}

// slotsPerDay mirrors model.SlotsPerDay (30-minute slots).
const slotNs = int64(30 * time.Minute)

// NewSynthSource builds the workload. The config universe, weights, and
// rate curve are pure functions of the seed and config.
func NewSynthSource(w *geo.World, cfg SynthConfig) (*SynthSource, error) {
	cfg = cfg.withDefaults()
	if cfg.Calls <= 0 {
		return nil, fmt.Errorf("des: SynthConfig.Calls must be positive")
	}
	s := &SynthSource{cfg: cfg, rng: NewStream(cfg.Seed, StreamWorkload)}
	s.buildUniverse(w)
	s.buildRateCurve()
	return s, nil
}

// buildUniverse draws the config universe: mostly single-country calls with
// a cross-region minority, media mix weighted toward video, and zipf config
// popularity (the paper's top-1% coverage comes from exactly this shape).
func (s *SynthSource) buildUniverse(w *geo.World) {
	countries := w.Countries()
	var cumCountry []float64
	var total float64
	for _, c := range countries {
		total += c.Weight
		cumCountry = append(cumCountry, total)
	}
	pickCountry := func() geo.CountryCode {
		u := s.rng.Float64() * total
		i := sort.SearchFloat64s(cumCountry, u)
		if i >= len(countries) {
			i = len(countries) - 1
		}
		return countries[i].Code
	}
	seen := map[string]int{}
	var weights []float64
	for k := 0; len(s.cfgs) < s.cfg.Configs && k < 4*s.cfg.Configs; k++ {
		var media model.MediaType
		switch u := s.rng.Float64(); {
		case u < 0.45:
			media = model.Audio
		case u < 0.85:
			media = model.Video
		default:
			media = model.ScreenShare
		}
		counts := map[geo.CountryCode]int{}
		counts[pickCountry()] += 2 + s.rng.Intn(7)
		if s.rng.Float64() < 0.30 {
			counts[pickCountry()] += 1 + s.rng.Intn(4)
		}
		cfg := model.CallConfig{Media: media, Spread: model.NewSpread(counts)}
		wgt := 1 / math.Pow(float64(len(s.cfgs)+1), 0.8)
		if i, dup := seen[cfg.Key()]; dup {
			weights[i] += wgt
			continue
		}
		seen[cfg.Key()] = len(s.cfgs)
		s.cfgs = append(s.cfgs, cfg)
		weights = append(weights, wgt)
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	s.cumw = make([]float64, len(weights))
	var acc float64
	for i, w := range weights {
		acc += w / sum
		s.cumw[i] = acc
	}
	s.cumw[len(s.cumw)-1] = 1
}

// buildRateCurve shapes arrivals with a business-hours bump so peaks and
// troughs exercise provisioning the way real demand does (internal/trace
// models per-country curves; one global curve is enough for fleet sweeps).
func (s *SynthSource) buildRateCurve() {
	slots := int(24 * time.Hour / time.Duration(slotNs))
	factors := make([]float64, slots)
	var sum float64
	for i := range factors {
		h := float64(i) * 24 / float64(slots)
		d := (h - 13.5) / 4.5
		factors[i] = 0.30 + 0.70*math.Exp(-d*d)
		sum += factors[i]
	}
	s.slotRate = make([]float64, slots)
	for i, f := range factors {
		// Integrating rate over a day yields CallsPerDay.
		s.slotRate[i] = float64(s.cfg.CallsPerDay) * f / (sum * float64(slotNs))
	}
}

// Configs implements Source.
func (s *SynthSource) Configs() []model.CallConfig { return s.cfgs }

// Next implements Source.
func (s *SynthSource) Next(a *Arrival) bool {
	if s.next >= uint64(s.cfg.Calls) {
		return false
	}
	slot := int(s.now/slotNs) % len(s.slotRate)
	if slot < 0 {
		slot = 0
	}
	s.now += int64(s.rng.Exp(1 / s.slotRate[slot]))
	s.next++
	a.ID = s.next
	a.At = s.now
	a.Cfg = s.pickConfig()
	a.Dur = s.drawDuration()
	return true
}

func (s *SynthSource) pickConfig() int32 {
	u := s.rng.Float64()
	i := sort.SearchFloat64s(s.cumw, u)
	if i >= len(s.cumw) {
		i = len(s.cumw) - 1
	}
	return int32(i)
}

func (s *SynthSource) drawDuration() int64 {
	min := float64(s.cfg.MinDur)
	d := min + s.rng.Exp(float64(s.cfg.MeanDur)-min)
	if max := float64(s.cfg.MaxDur); d > max {
		d = max
	}
	return int64(d)
}

// ExpectedPeakLoad estimates the peak-slot concurrent load the workload puts
// on each DC and link, assuming every call lands at its lowest-ACL candidate
// — the Little's-law provisioning baseline dessweep scales into capacities.
func (s *SynthSource) ExpectedPeakLoad(f *Fleet) (cores, gbps []float64) {
	cores = make([]float64, f.NumDCs())
	gbps = make([]float64, len(f.CapGbps))
	peakRate := 0.0
	for _, r := range s.slotRate {
		if r > peakRate {
			peakRate = r
		}
	}
	prev := 0.0
	for c := range s.cfgs {
		share := s.cumw[c] - prev
		prev = s.cumw[c]
		// Little's law: concurrency = arrival rate x mean residence.
		concurrent := peakRate * share * float64(time.Second) * s.cfg.MeanDur.Seconds()
		x := f.Candidates(int32(c))[0]
		cores[x] += concurrent * f.Cores(int32(c))
		for _, ll := range f.Links(int32(c), x) {
			gbps[ll.Link] += concurrent * ll.Gbps
		}
	}
	return cores, gbps
}

// RecordSource replays model.CallRecords (a parsed internal/tracefile trace
// or anything cmd/sbgen emits) through the engine. Records are sorted by
// (start, ID); the config universe is the distinct configs present.
type RecordSource struct {
	origin time.Time
	recs   []*model.CallRecord
	cfgs   []model.CallConfig
	cfgIdx []int32 // per record, index into cfgs
	pos    int
}

// NewRecordSource indexes the records. The source's virtual origin is the
// earliest record start; Origin exposes it so trace timestamps line up.
func NewRecordSource(recs []*model.CallRecord) (*RecordSource, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("des: empty record set")
	}
	sorted := make([]*model.CallRecord, 0, len(recs))
	for _, r := range recs {
		if len(r.Legs) > 0 {
			sorted = append(sorted, r)
		}
	}
	if len(sorted) == 0 {
		return nil, fmt.Errorf("des: no records with legs")
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		if !sorted[i].Start.Equal(sorted[j].Start) {
			return sorted[i].Start.Before(sorted[j].Start)
		}
		return sorted[i].ID < sorted[j].ID
	})
	s := &RecordSource{origin: sorted[0].Start, recs: sorted}
	byKey := map[string]int32{}
	s.cfgIdx = make([]int32, len(sorted))
	for i, r := range sorted {
		cfg := r.Config()
		key := cfg.Key()
		idx, ok := byKey[key]
		if !ok {
			idx = int32(len(s.cfgs))
			byKey[key] = idx
			s.cfgs = append(s.cfgs, cfg)
		}
		s.cfgIdx[i] = idx
	}
	return s, nil
}

// Origin returns the virtual-time anchor (the earliest record start).
func (s *RecordSource) Origin() time.Time { return s.origin }

// Configs implements Source.
func (s *RecordSource) Configs() []model.CallConfig { return s.cfgs }

// Next implements Source.
func (s *RecordSource) Next(a *Arrival) bool {
	if s.pos >= len(s.recs) {
		return false
	}
	r := s.recs[s.pos]
	a.ID = r.ID
	a.At = r.Start.Sub(s.origin).Nanoseconds()
	a.Dur = r.Duration.Nanoseconds()
	a.Cfg = s.cfgIdx[s.pos]
	s.pos++
	return true
}
