package des

import (
	"sort"
	"testing"
)

// TestQueueOrdering pushes a shuffled schedule and checks the drain order is
// exactly (At, Pri, Seq).
func TestQueueOrdering(t *testing.T) {
	type key struct {
		at  int64
		pri uint8
		seq uint64
	}
	rng := NewStream(7, 99)
	var want []key
	q := NewQueue(0)
	for i := 0; i < 5000; i++ {
		k := key{
			at:  int64(rng.Intn(64)),
			pri: uint8(rng.Intn(3)),
			seq: uint64(i),
		}
		want = append(want, k)
		q.Push(Event{At: k.at, Pri: k.pri, Seq: k.seq})
	}
	sort.Slice(want, func(i, j int) bool {
		a, b := want[i], want[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.pri != b.pri {
			return a.pri < b.pri
		}
		return a.seq < b.seq
	})
	for i, k := range want {
		ev, ok := q.Pop()
		if !ok {
			t.Fatalf("queue empty after %d pops, want %d", i, len(want))
		}
		if ev.At != k.at || ev.Pri != k.pri || ev.Seq != k.seq {
			t.Fatalf("pop %d = (%d,%d,%d), want (%d,%d,%d)",
				i, ev.At, ev.Pri, ev.Seq, k.at, k.pri, k.seq)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
	if q.Pushed() != 5000 || q.Popped() != 5000 {
		t.Fatalf("pushed/popped = %d/%d, want 5000/5000", q.Pushed(), q.Popped())
	}
	if q.MaxLen() != 5000 {
		t.Fatalf("MaxLen = %d, want 5000", q.MaxLen())
	}
}

// TestQueuePriorities checks the semantic ordering at one instant:
// departures, then fleet events, then arrivals.
func TestQueuePriorities(t *testing.T) {
	q := NewQueue(4)
	q.Push(Event{At: 10, Pri: PriArrive, Seq: 1, Kind: KindArrive})
	q.Push(Event{At: 10, Pri: PriDepart, Seq: 2, Kind: KindDepart})
	q.Push(Event{At: 10, Pri: PriFleet, Seq: 3, Kind: KindDCFail})
	wantKinds := []uint8{KindDepart, KindDCFail, KindArrive}
	for i, want := range wantKinds {
		ev, ok := q.Pop()
		if !ok || ev.Kind != want {
			t.Fatalf("pop %d kind = %d (ok=%v), want %d", i, ev.Kind, ok, want)
		}
	}
}

// TestStreamIndependence checks that distinct stream IDs from one seed
// produce distinct sequences, and identical (seed, id) replays exactly.
func TestStreamIndependence(t *testing.T) {
	a1 := NewStream(42, StreamWorkload)
	a2 := NewStream(42, StreamWorkload)
	b := NewStream(42, StreamPolicy)
	var sameAB bool
	for i := 0; i < 100; i++ {
		x := a1.Uint64()
		if y := a2.Uint64(); x != y {
			t.Fatalf("same (seed,id) diverged at draw %d: %d vs %d", i, x, y)
		}
		if x == b.Uint64() {
			sameAB = true
		}
	}
	if sameAB {
		t.Fatal("distinct stream IDs produced overlapping draws")
	}
	c := NewStream(43, StreamWorkload)
	d := NewStream(42, StreamWorkload)
	if c.Uint64() == d.Uint64() {
		t.Fatal("distinct seeds produced the same first draw")
	}
}

// TestStreamDistributions sanity-checks the derived draws.
func TestStreamDistributions(t *testing.T) {
	s := NewStream(1, StreamWorkload)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
	var esum float64
	for i := 0; i < 10000; i++ {
		e := s.Exp(5)
		if e < 0 {
			t.Fatalf("Exp draw negative: %v", e)
		}
		esum += e
	}
	if mean := esum / 10000; mean < 4.5 || mean > 5.5 {
		t.Fatalf("Exp(5) mean = %v, want ~5", mean)
	}
}
