package des

import (
	"fmt"
	"sort"

	"switchboard/internal/geo"
	"switchboard/internal/model"
)

// LinkLoad is one WAN link's bandwidth share of a hosted call.
type LinkLoad struct {
	Link int32
	Gbps float64
}

// Fleet is the simulated datacenter fleet: the geo world's DCs and links,
// a config universe, and — precomputed once so the event loop never touches
// graph algorithms — per-(config, DC) compute load, ACL, link loads, and the
// latency-feasible candidate order. Capacities are set separately so one
// fleet can be swept under many provisioning hypotheses.
type Fleet struct {
	World *geo.World
	// CapCores[x] / CapGbps[l] are the provisioned capacities.
	CapCores []float64
	CapGbps  []float64

	cfgs  []model.CallConfig
	cores []float64      // cores[c]: compute load of one config-c call
	acl   [][]float64    // acl[c][x]: average call latency (ms) hosted at x
	links [][][]LinkLoad // links[c][x]: per-link Gbps of a config-c call at x
	cands [][]int32      // cands[c]: feasible DCs by ascending ACL (Eq 4 + min-ACL fallback)
}

// NewFleet precomputes the placement tables for the config universe over w.
// latThreshMs is LAT_th (Eq 4): a DC is a candidate for a config when the
// config's ACL there stays under the threshold; a config no DC satisfies
// falls back to its single lowest-ACL DC, like the provisioning LP does.
func NewFleet(w *geo.World, cfgs []model.CallConfig, latThreshMs float64) (*Fleet, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("des: empty config universe")
	}
	nDC := len(w.DCs())
	f := &Fleet{
		World:    w,
		CapCores: make([]float64, nDC),
		CapGbps:  make([]float64, len(w.Links())),
		cfgs:     cfgs,
		cores:    make([]float64, len(cfgs)),
		acl:      make([][]float64, len(cfgs)),
		links:    make([][][]LinkLoad, len(cfgs)),
		cands:    make([][]int32, len(cfgs)),
	}
	for c, cfg := range cfgs {
		if len(cfg.Spread) == 0 {
			return nil, fmt.Errorf("des: config %d has an empty spread", c)
		}
		f.cores[c] = cfg.ComputeLoad()
		f.acl[c] = make([]float64, nDC)
		f.links[c] = make([][]LinkLoad, nDC)
		for x := 0; x < nDC; x++ {
			f.acl[c][x] = cfg.ACL(w, x)
			f.links[c][x] = pathLoads(w, cfg, x)
		}
		var cands []int32
		for x := 0; x < nDC; x++ {
			if f.acl[c][x] <= latThreshMs {
				cands = append(cands, int32(x))
			}
		}
		if len(cands) == 0 {
			best := 0
			for x := 1; x < nDC; x++ {
				if f.acl[c][x] < f.acl[c][best] {
					best = x
				}
			}
			cands = []int32{int32(best)}
		}
		aclRow := f.acl[c]
		sort.SliceStable(cands, func(i, j int) bool {
			a, b := aclRow[cands[i]], aclRow[cands[j]]
			if a != b {
				return a < b
			}
			return cands[i] < cands[j]
		})
		f.cands[c] = cands
	}
	return f, nil
}

// SetCapacity installs the provisioned capacities (copied).
func (f *Fleet) SetCapacity(capCores, capGbps []float64) error {
	if len(capCores) != len(f.CapCores) || len(capGbps) != len(f.CapGbps) {
		return fmt.Errorf("des: capacity vectors sized %d/%d, want %d/%d",
			len(capCores), len(capGbps), len(f.CapCores), len(f.CapGbps))
	}
	copy(f.CapCores, capCores)
	copy(f.CapGbps, capGbps)
	return nil
}

// Configs returns the config universe.
func (f *Fleet) Configs() []model.CallConfig { return f.cfgs }

// NumDCs returns the fleet size.
func (f *Fleet) NumDCs() int { return len(f.CapCores) }

// Cores returns the compute load of one config-c call.
func (f *Fleet) Cores(c int32) float64 { return f.cores[c] }

// ACL returns config c's average call latency hosted at DC x.
func (f *Fleet) ACL(c, x int32) float64 { return f.acl[c][x] }

// Links returns config c's per-link loads when hosted at DC x.
func (f *Fleet) Links(c, x int32) []LinkLoad { return f.links[c][x] }

// Candidates returns config c's latency-feasible DCs by ascending ACL.
func (f *Fleet) Candidates(c int32) []int32 { return f.cands[c] }

// DCName returns the datacenter's name (for traces and reports).
func (f *Fleet) DCName(x int32) string { return f.World.DCs()[x].Name }

// pathLoads computes a config's per-link Gbps at a hosting DC, sorted by
// link index (map iteration order must not leak into the tables).
func pathLoads(w *geo.World, cfg model.CallConfig, dc int) []LinkLoad {
	perLink := make(map[int]float64)
	mbps := cfg.Media.NetworkLoad()
	for _, cc := range cfg.Spread {
		for _, l := range w.Path(dc, cc.Country) {
			perLink[l] += mbps * float64(cc.Count) / 1000
		}
	}
	out := make([]LinkLoad, 0, len(perLink))
	for l, g := range perLink {
		out = append(out, LinkLoad{Link: int32(l), Gbps: g})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link < out[j].Link })
	return out
}
