package des

import (
	"fmt"
	"time"
)

// Call is one in-flight call's bookkeeping. Calls are pooled (free-listed)
// and threaded onto an intrusive per-DC doubly-linked list so a DC-failure
// sweep can walk exactly the calls it hosts without a map or a scan.
type Call struct {
	id       uint64
	end      int64 // departure virtual time
	placedAt int64 // when the call landed at dc (arrival or migration)
	cfg      int32
	dc       int32
	prev     *Call
	next     *Call // also the free-list link when pooled
}

// DCFailure schedules a datacenter outage: the DC fails at At and recovers
// at Recover (zero or ≤ At: never, within this run). Between failure and
// detection (the failover policy's delay) the controller keeps placing calls
// there — exactly the window the failover-timing sweep measures.
type DCFailure struct {
	DC      int32
	At      time.Duration
	Recover time.Duration
}

// Config assembles one simulation run.
type Config struct {
	Fleet     *Fleet
	Source    Source
	Placement PlacementPolicy
	Admission AdmissionPolicy // nil: every call is admitted
	Failover  FailoverPolicy  // nil: FixedDetection{30s}
	Failures  []DCFailure
	// Seed drives the policy, failover, and trace streams. The workload
	// source carries its own seed, so re-seeding the engine replays the
	// identical arrival stream under fresh policy randomness.
	Seed  int64
	Trace *Trace // nil: decision trace off
}

// Result is one run's aggregate outcome.
type Result struct {
	// Calls is the number of arrivals drawn from the source; Placed of
	// those were hosted, Rejected refused by admission. Migrated counts
	// failover re-placements (a call migrated twice counts twice).
	Calls    uint64
	Placed   uint64
	Rejected uint64
	Migrated uint64
	// Overflowed counts placements (arrivals and migrations) that landed on
	// a DC without compute headroom.
	Overflowed uint64
	// Events and DroppedEvents audit the queue: DroppedEvents must be zero
	// on a clean drain. MaxQueueLen is the pending-event high-water mark.
	Events        uint64
	DroppedEvents uint64
	MaxQueueLen   int
	// PeakConcurrent is the most simultaneously hosted calls.
	PeakConcurrent int
	// MeanACLms averages the hosted latency over placements; RegretMeanMs
	// averages the gap to each call's best available candidate (zero when
	// every call lands latency-first).
	MeanACLms    float64
	RegretMeanMs float64
	// MaxCoreUtil is the worst instantaneous cores/capacity ratio any DC
	// reached; OverflowShare is Overflowed over placements.
	MaxCoreUtil   float64
	OverflowShare float64
	// DisruptedCallSeconds sums each migrated call's outage: from the later
	// of the DC failing and the call landing there, to the detection sweep.
	DisruptedCallSeconds float64
	// TraceLines is the number of decision-trace records written.
	TraceLines uint64
}

// Engine executes one run. It is single-use and single-threaded: the shared
// virtual clock is the determinism contract, so there is nothing to lock.
type Engine struct {
	f          *Fleet
	src        Source
	place      PlacementPolicy
	admit      AdmissionPolicy
	fail       FailoverPolicy
	tw         *Trace
	policyName string

	q   *Queue
	seq uint64

	polRng  Stream
	failRng Stream

	usage     Usage   // Down = detected-down, the controller's view
	downTruth []bool  // ground truth, ahead of detection
	failedAt  []int64 // virtual time each down DC failed
	nDown     int     // detected-down count (fast path: zero = no filtering)

	dcHead  []*Call
	free    *Call
	scratch []int32
	pending Arrival // reused across Next calls (a local would escape through the interface)

	calls          uint64
	placed         uint64
	rejected       uint64
	migrated       uint64
	overflowed     uint64
	concurrent     int
	peakConcurrent int
	aclSum         float64
	regretSum      float64
	maxUtil        float64
	disruptedNs    float64
}

// NewEngine validates cfg and builds a ready-to-Run engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Fleet == nil || cfg.Source == nil || cfg.Placement == nil {
		return nil, fmt.Errorf("des: Config needs Fleet, Source, and Placement")
	}
	if len(cfg.Source.Configs()) != len(cfg.Fleet.Configs()) {
		return nil, fmt.Errorf("des: source universe (%d configs) does not match fleet (%d)",
			len(cfg.Source.Configs()), len(cfg.Fleet.Configs()))
	}
	fail := cfg.Failover
	if fail == nil {
		fail = FixedDetection{Delay: 30 * time.Second}
	}
	nDC := cfg.Fleet.NumDCs()
	for _, df := range cfg.Failures {
		if df.DC < 0 || int(df.DC) >= nDC {
			return nil, fmt.Errorf("des: failure schedules DC %d, fleet has %d", df.DC, nDC)
		}
	}
	e := &Engine{
		f:          cfg.Fleet,
		src:        cfg.Source,
		place:      cfg.Placement,
		admit:      cfg.Admission,
		fail:       fail,
		tw:         cfg.Trace,
		policyName: cfg.Placement.Name(),
		q:          NewQueue(4096),
		polRng:     NewStream(cfg.Seed, StreamPolicy),
		failRng:    NewStream(cfg.Seed, StreamFailover),
		downTruth:  make([]bool, nDC),
		failedAt:   make([]int64, nDC),
		dcHead:     make([]*Call, nDC),
		scratch:    make([]int32, 0, nDC),
	}
	e.usage = Usage{
		Cores:    make([]float64, nDC),
		Gbps:     make([]float64, len(cfg.Fleet.CapGbps)),
		CapCores: cfg.Fleet.CapCores,
		CapGbps:  cfg.Fleet.CapGbps,
		Down:     make([]bool, nDC),
	}
	for _, df := range cfg.Failures {
		e.seq++
		e.q.Push(Event{At: int64(df.At), Seq: e.seq, Pri: PriFleet, Kind: KindDCFail, DC: df.DC})
		if df.Recover > df.At {
			e.seq++
			e.q.Push(Event{At: int64(df.Recover), Seq: e.seq, Pri: PriFleet, Kind: KindDCRecover, DC: df.DC})
		}
	}
	return e, nil
}

// Run drains the event queue and returns the aggregate result. Everything
// downstream of the first Pop is the annotated hot path: one call costs two
// heap-free queue operations plus pooled bookkeeping, which is what holds
// 10M calls to single-digit seconds on one core.
func (e *Engine) Run() (Result, error) {
	e.scheduleNextArrival()
	for {
		ev, ok := e.q.Pop()
		if !ok {
			break
		}
		e.step(ev)
	}
	if err := e.tw.Close(); err != nil {
		return Result{}, fmt.Errorf("des: decision trace: %w", err)
	}
	r := Result{
		Calls:                e.calls,
		Placed:               e.placed,
		Rejected:             e.rejected,
		Migrated:             e.migrated,
		Overflowed:           e.overflowed,
		Events:               e.q.Popped(),
		DroppedEvents:        e.q.Pushed() - e.q.Popped() - uint64(e.q.Len()),
		MaxQueueLen:          e.q.MaxLen(),
		PeakConcurrent:       e.peakConcurrent,
		MaxCoreUtil:          e.maxUtil,
		DisruptedCallSeconds: e.disruptedNs / 1e9,
		TraceLines:           e.tw.Lines(),
	}
	if e.placed > 0 {
		r.MeanACLms = e.aclSum / float64(e.placed)
		r.RegretMeanMs = e.regretSum / float64(e.placed)
		r.OverflowShare = float64(e.overflowed) / float64(e.placed)
	}
	return r, nil
}

// step dispatches one event. This is the engine's inner loop: everything it
// reaches must stay heap-allocation-free outside the justified escapes
// (queue growth, call-pool growth, sampled trace emission, and the injected
// policy interfaces).
//
//sblint:hotpath
func (e *Engine) step(ev Event) {
	switch ev.Kind {
	case KindArrive:
		e.arrive(ev)
	case KindDepart:
		e.depart(ev.Call)
	case KindDCFail:
		e.dcFail(ev)
	case KindSweep:
		e.sweep(ev)
	case KindDCRecover:
		e.dcRecover(ev.DC)
	}
}

// scheduleNextArrival pulls one arrival from the source — the queue holds at
// most one pending arrival, so queue depth tracks concurrency, not total
// calls.
func (e *Engine) scheduleNextArrival() {
	if !e.src.Next(&e.pending) { //sblint:allowalloc(source is an injected interface; built-in sources are allocation-free)
		return
	}
	a := &e.pending
	call := e.alloc()
	call.id = a.ID
	call.cfg = a.Cfg
	call.end = a.At + a.Dur
	e.calls++
	e.seq++
	e.q.Push(Event{At: a.At, Seq: e.seq, Pri: PriArrive, Kind: KindArrive, Call: call})
}

func (e *Engine) alloc() *Call {
	if c := e.free; c != nil {
		e.free = c.next
		c.next = nil
		return c
	}
	return &Call{} //sblint:allowalloc(call pool growth; steady state reuses departed calls)
}

func (e *Engine) release(c *Call) {
	c.prev = nil
	c.next = e.free
	e.free = c
}

// candidates returns the config's feasible DCs with detected-down ones
// filtered out, falling back to the unfiltered list when every candidate is
// down (the call must land somewhere; real controllers do the same).
func (e *Engine) candidates(c int32) []int32 {
	cands := e.f.cands[c]
	if e.nDown == 0 {
		return cands
	}
	s := e.scratch[:0]
	for _, x := range cands {
		if !e.usage.Down[x] {
			s = append(s, x) //sblint:allowalloc(scratch is preallocated to the DC count)
		}
	}
	if len(s) == 0 {
		return cands
	}
	return s
}

func (e *Engine) arrive(ev Event) {
	call := ev.Call
	c := call.cfg
	cands := e.candidates(c)
	if e.admit != nil && !e.admit.Admit(e.f, c, cands, &e.usage) { //sblint:allowalloc(admission is an injected interface; built-in policies are allocation-free)
		e.rejected++
		if e.tw.Sampled(call.id) {
			e.tw.EmitCall(e.f, &e.usage, call.id, ev.At, c, cands[0], cands, e.policyName, "rejected")
		}
		e.release(call)
		e.scheduleNextArrival()
		return
	}
	dc := e.place.Choose(e.f, c, cands, &e.usage, &e.polRng) //sblint:allowalloc(placement is an injected interface; built-in policies are allocation-free)
	status := ""
	if !e.usage.FitsCompute(dc, e.f.cores[c]) {
		e.overflowed++
		status = "overflow"
	}
	if e.tw.Sampled(call.id) {
		e.tw.EmitCall(e.f, &e.usage, call.id, ev.At, c, dc, cands, e.policyName, status)
	}
	e.host(call, dc, ev.At)
	e.placed++
	e.aclSum += e.f.acl[c][dc]
	e.regretSum += e.f.acl[c][dc] - e.f.acl[c][cands[0]]
	e.seq++
	e.q.Push(Event{At: call.end, Seq: e.seq, Pri: PriDepart, Kind: KindDepart, Call: call})
	e.scheduleNextArrival()
}

// host charges a call's resources to dc and links it into the DC's list.
func (e *Engine) host(call *Call, dc int32, now int64) {
	call.dc = dc
	call.placedAt = now
	call.prev = nil
	call.next = e.dcHead[dc]
	if call.next != nil {
		call.next.prev = call
	}
	e.dcHead[dc] = call
	e.usage.Cores[dc] += e.f.cores[call.cfg]
	if cap := e.usage.CapCores[dc]; cap > 0 {
		if u := e.usage.Cores[dc] / cap; u > e.maxUtil {
			e.maxUtil = u
		}
	}
	for _, ll := range e.f.links[call.cfg][dc] {
		e.usage.Gbps[ll.Link] += ll.Gbps
	}
	e.concurrent++
	if e.concurrent > e.peakConcurrent {
		e.peakConcurrent = e.concurrent
	}
}

// unhost releases a call's resources and unlinks it from its DC's list.
func (e *Engine) unhost(call *Call) {
	dc := call.dc
	if call.prev != nil {
		call.prev.next = call.next
	} else {
		e.dcHead[dc] = call.next
	}
	if call.next != nil {
		call.next.prev = call.prev
	}
	e.usage.Cores[dc] -= e.f.cores[call.cfg]
	for _, ll := range e.f.links[call.cfg][dc] {
		e.usage.Gbps[ll.Link] -= ll.Gbps
	}
	e.concurrent--
}

func (e *Engine) depart(call *Call) {
	e.unhost(call)
	e.release(call)
}

// dcFail marks ground truth and schedules the detection sweep. The gap
// between the two is the failover policy's detection delay — arrivals keep
// landing on the dead DC until the sweep, as they would in production.
func (e *Engine) dcFail(ev Event) {
	dc := ev.DC
	if e.downTruth[dc] {
		return
	}
	e.downTruth[dc] = true
	e.failedAt[dc] = ev.At
	delay := e.fail.DetectionDelay(dc, &e.failRng) //sblint:allowalloc(failover timing is an injected interface; built-in policies are allocation-free)
	e.seq++
	e.q.Push(Event{At: ev.At + int64(delay), Seq: e.seq, Pri: PriFleet, Kind: KindSweep, DC: dc})
}

// sweep is failure detection: the controller finally sees the DC down and
// migrates its calls to surviving candidates. Each call's disruption spans
// from when it lost service (DC failing, or landing on the already-dead DC)
// to now.
func (e *Engine) sweep(ev Event) {
	dc := ev.DC
	if !e.downTruth[dc] {
		return // recovered before detection: nothing to do
	}
	if !e.usage.Down[dc] {
		e.usage.Down[dc] = true
		e.nDown++
	}
	migrated := 0
	for call := e.dcHead[dc]; call != nil; {
		next := call.next
		e.unhost(call)
		from := e.failedAt[dc]
		if call.placedAt > from {
			from = call.placedAt
		}
		e.disruptedNs += float64(ev.At - from)
		cands := e.candidates(call.cfg)
		ndc := e.place.Choose(e.f, call.cfg, cands, &e.usage, &e.polRng) //sblint:allowalloc(placement is an injected interface; built-in policies are allocation-free)
		if !e.usage.FitsCompute(ndc, e.f.cores[call.cfg]) {
			e.overflowed++
		}
		e.host(call, ndc, ev.At)
		e.migrated++
		migrated++
		call = next
	}
	e.tw.EmitFailover(e.f, ev.At, dc, migrated, ev.At-e.failedAt[dc])
}

func (e *Engine) dcRecover(dc int32) {
	if !e.downTruth[dc] {
		return
	}
	e.downTruth[dc] = false
	e.failedAt[dc] = 0
	if e.usage.Down[dc] {
		e.usage.Down[dc] = false
		e.nDown--
	}
}

// Run is the one-shot convenience wrapper: build an engine and drain it.
func Run(cfg Config) (Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	return e.Run()
}
