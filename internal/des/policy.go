package des

import "time"

// Usage is the engine's live resource view, exposed to policies. Slices are
// owned by the engine; policies must treat them as read-only.
type Usage struct {
	// Cores[x] / Gbps[l] are the currently consumed resources.
	Cores []float64
	Gbps  []float64
	// CapCores / CapGbps alias the fleet's provisioned capacities.
	CapCores []float64
	CapGbps  []float64
	// Down[x] reports that DC x has failed AND the failure has been
	// detected — the controller's view, not ground truth (between failure
	// and detection the engine still offers the DC, as a real fleet would).
	Down []bool
}

// FitsCompute reports whether one call of the given load fits at DC x.
// Compute is the hard resource; WAN exceedance is tracked as cost, mirroring
// internal/sim's accounting.
func (u *Usage) FitsCompute(x int32, cores float64) bool {
	return u.Cores[x]+cores <= u.CapCores[x]+1e-9
}

// Headroom returns the free cores at DC x.
func (u *Usage) Headroom(x int32) float64 { return u.CapCores[x] - u.Cores[x] }

// PlacementPolicy chooses the hosting DC for one arriving (or migrating)
// call. cands is the latency-feasible candidate list in ascending-ACL order
// with detected-down DCs already filtered out; it is never empty. rng is the
// policy's private seeded stream — policies must draw randomness only from
// it, never from package globals, or seed stability breaks.
type PlacementPolicy interface {
	Name() string
	Choose(f *Fleet, c int32, cands []int32, u *Usage, rng *Stream) int32
}

// AdmissionPolicy decides whether an arriving call is admitted at all.
// A nil policy admits everything (conferencing calls are not droppable in
// production; rejection exists so capacity-gated what-if sweeps are possible).
type AdmissionPolicy interface {
	Name() string
	Admit(f *Fleet, c int32, cands []int32, u *Usage) bool
}

// FailoverPolicy models the control plane's failure-detection timing: how
// long after a DC dies its calls are swept onto survivors. Sweeping this
// delay is the "failover timing" axis of the paper's availability story.
type FailoverPolicy interface {
	Name() string
	DetectionDelay(dc int32, rng *Stream) time.Duration
}

// LowestACL hosts each call at the lowest-ACL candidate that still has
// compute headroom, falling back to the lowest-ACL candidate outright — the
// DES analogue of internal/sim's greedy-local and the live controller's
// latency-first rule.
type LowestACL struct{}

// Name implements PlacementPolicy.
func (LowestACL) Name() string { return "lowest-acl" }

// Choose implements PlacementPolicy.
func (LowestACL) Choose(f *Fleet, c int32, cands []int32, u *Usage, _ *Stream) int32 {
	cores := f.cores[c]
	for _, x := range cands {
		if u.FitsCompute(x, cores) {
			return x
		}
	}
	return cands[0]
}

// LeastLoaded hosts each call at the candidate with the most free cores,
// trading latency for load spreading — the classic overflow-minimizing
// baseline the paper's plan-following allocator is measured against.
type LeastLoaded struct{}

// Name implements PlacementPolicy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Choose implements PlacementPolicy.
func (LeastLoaded) Choose(f *Fleet, c int32, cands []int32, u *Usage, _ *Stream) int32 {
	best := cands[0]
	bestHead := u.Headroom(best)
	for _, x := range cands[1:] {
		if h := u.Headroom(x); h > bestHead {
			best, bestHead = x, h
		}
	}
	return best
}

// PowerOfTwo samples two candidates uniformly and keeps the one with more
// free cores (ties and a full loser fall back to the lower-ACL pick). The
// two-choices trick gets most of least-loaded's balance at a fraction of its
// state-freshness requirements, which is why real fleets like it.
type PowerOfTwo struct{}

// Name implements PlacementPolicy.
func (PowerOfTwo) Name() string { return "power-of-two" }

// Choose implements PlacementPolicy.
func (PowerOfTwo) Choose(f *Fleet, c int32, cands []int32, u *Usage, rng *Stream) int32 {
	if len(cands) == 1 {
		return cands[0]
	}
	a := cands[rng.Intn(len(cands))]
	b := cands[rng.Intn(len(cands))]
	if u.Headroom(b) > u.Headroom(a) {
		a, b = b, a
	}
	if u.FitsCompute(a, f.cores[c]) {
		return a
	}
	// Both draws full: fall back to the latency-first scan.
	return LowestACL{}.Choose(f, c, cands, u, rng)
}

// BestFit hosts each call at the candidate with the least headroom that
// still fits (first-fit-decreasing's online cousin), keeping slack
// consolidated — the bin-packing-flavored extreme of the sweep.
type BestFit struct{}

// Name implements PlacementPolicy.
func (BestFit) Name() string { return "best-fit" }

// Choose implements PlacementPolicy.
func (BestFit) Choose(f *Fleet, c int32, cands []int32, u *Usage, _ *Stream) int32 {
	cores := f.cores[c]
	best := int32(-1)
	bestHead := 0.0
	for _, x := range cands {
		h := u.Headroom(x)
		if h < cores {
			continue
		}
		if best < 0 || h < bestHead {
			best, bestHead = x, h
		}
	}
	if best >= 0 {
		return best
	}
	return cands[0]
}

// PlacementByName resolves the built-in placement policies for CLI sweeps.
func PlacementByName(name string) (PlacementPolicy, bool) {
	switch name {
	case "lowest-acl":
		return LowestACL{}, true
	case "least-loaded":
		return LeastLoaded{}, true
	case "power-of-two":
		return PowerOfTwo{}, true
	case "best-fit":
		return BestFit{}, true
	}
	return nil, false
}

// AdmitAll is the production admission policy: every call is hosted, over
// capacity if need be (overflow is counted, not dropped).
type AdmitAll struct{}

// Name implements AdmissionPolicy.
func (AdmitAll) Name() string { return "admit-all" }

// Admit implements AdmissionPolicy.
func (AdmitAll) Admit(*Fleet, int32, []int32, *Usage) bool { return true }

// CapacityGate rejects a call when no candidate has compute headroom for it
// — the what-if admission control the paper's provisioning argues should
// never have to fire.
type CapacityGate struct{}

// Name implements AdmissionPolicy.
func (CapacityGate) Name() string { return "capacity-gate" }

// Admit implements AdmissionPolicy.
func (CapacityGate) Admit(f *Fleet, c int32, cands []int32, u *Usage) bool {
	cores := f.cores[c]
	for _, x := range cands {
		if u.FitsCompute(x, cores) {
			return true
		}
	}
	return false
}

// FixedDetection is the built-in failover-timing policy: a constant delay
// between a DC dying and its calls being swept to survivors.
type FixedDetection struct {
	Delay time.Duration
}

// Name implements FailoverPolicy.
func (FixedDetection) Name() string { return "fixed-detection" }

// DetectionDelay implements FailoverPolicy.
func (d FixedDetection) DetectionDelay(int32, *Stream) time.Duration { return d.Delay }
