// Package faults is a deterministic fault-injection substrate for the
// realtime service path. It wraps net.Conn / net.Listener with a seeded
// injector that perturbs individual reads and writes (added latency, stalls,
// connection resets, partial writes, blackholes), and provides a TCP chaos
// proxy that can partition a client from its upstream on command. Every
// failure mode the provisioning layer plans for (Eq 7-8's DC and link
// scenarios) becomes reproducible in unit tests and benchmarks: the same
// seed and operation sequence yields the same injected faults.
package faults

import (
	"errors"
	"net"
	"sync"
	"time"

	"switchboard/internal/obs"
)

// Kind classifies an injected fault.
type Kind int

const (
	// Latency delays the operation by Rule.Delay before executing it.
	Latency Kind = iota
	// Stall blocks the operation for Rule.Delay before executing it.
	// Mechanically identical to Latency; scenarios use it to mark long
	// pauses (GC, VM migration) as opposed to network jitter.
	Stall
	// Reset closes the connection and fails the operation immediately,
	// emulating a peer RST.
	Reset
	// PartialWrite writes a prefix of the payload, then resets. Reads
	// treat PartialWrite like Reset.
	PartialWrite
	// Blackhole silently discards writes; the peer never sees the data,
	// so subsequent reads block until the connection's deadline fires.
	Blackhole
)

func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Stall:
		return "stall"
	case Reset:
		return "reset"
	case PartialWrite:
		return "partial-write"
	case Blackhole:
		return "blackhole"
	default:
		return "unknown"
	}
}

// ErrInjected is the error returned for operations killed by a Reset or
// PartialWrite fault. Callers distinguish injected failures from organic
// ones with errors.Is.
var ErrInjected = errors.New("faults: injected connection failure")

// Rule is one scheduled fault. Rules form a scenario schedule: each is
// active during [From, Until) measured from the injector's creation
// (Until 0 means forever), and fires per operation with probability Prob
// (0 means always). The first active rule that fires wins.
type Rule struct {
	Kind Kind
	// From and Until bound the rule's active window relative to injector
	// start. A zero Until leaves the rule active forever.
	From, Until time.Duration
	// Prob is the per-operation firing probability in (0, 1]; 0 means 1.
	Prob float64
	// Delay parameterizes Latency and Stall.
	Delay time.Duration
}

// Injector decides, per I/O operation, whether and which fault fires. It is
// deterministic: the decision sequence is a pure function of the seed and
// the order of operations (time-windowed rules additionally depend on the
// wall clock, as a scenario schedule must).
type Injector struct {
	mu       sync.Mutex
	rules    []Rule          // guarded by mu
	start    time.Time       // guarded by mu
	rng      uint64          // guarded by mu
	injected [5]*obs.Counter // guarded by mu; per-Kind, resolved in SetMetrics
}

// NewInjectionCounter registers the fault-injection counter family on r:
// sb_faults_injected_total{kind=...}. Pass the result to SetMetrics.
func NewInjectionCounter(r *obs.Registry) *obs.CounterVec {
	return r.CounterVec("sb_faults_injected_total", "Faults injected, by kind.", "kind")
}

// SetMetrics attaches an injections-by-kind counter vector (see
// NewInjectionCounter). Children are resolved once here so the per-operation
// pick path never does a label lookup.
func (in *Injector) SetMetrics(vec *obs.CounterVec) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for k := Latency; k <= Blackhole; k++ {
		in.injected[k] = vec.With(k.String())
	}
}

// NewInjector returns an injector with the given seed and scenario schedule.
func NewInjector(seed int64, rules ...Rule) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{rules: rules, start: time.Now(), rng: uint64(seed)}
}

// next steps the xorshift64 generator and returns a uniform value in [0,1).
// Callers (pick) hold mu.
//
//sblint:holds mu
func (in *Injector) next() float64 {
	in.rng ^= in.rng << 13
	in.rng ^= in.rng >> 7
	in.rng ^= in.rng << 17
	return float64(in.rng%1e6) / 1e6
}

// pick returns the first active rule that fires for this operation.
func (in *Injector) pick() (Rule, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	elapsed := time.Since(in.start)
	for _, r := range in.rules {
		if elapsed < r.From || (r.Until > 0 && elapsed >= r.Until) {
			continue
		}
		p := r.Prob
		if p <= 0 {
			p = 1
		}
		if in.next() < p {
			if r.Kind >= 0 && int(r.Kind) < len(in.injected) {
				in.injected[r.Kind].Inc()
			}
			return r, true
		}
	}
	return Rule{}, false
}

// Conn wraps c so every Read and Write consults the injector.
func (in *Injector) Conn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, inj: in}
}

// Listener wraps l so every accepted connection is fault-injected.
func (in *Injector) Listener(l net.Listener) net.Listener {
	return &faultListener{Listener: l, inj: in}
}

type faultConn struct {
	net.Conn
	inj *Injector
}

func (c *faultConn) Read(p []byte) (int, error) {
	if r, ok := c.inj.pick(); ok {
		switch r.Kind {
		case Latency, Stall:
			time.Sleep(r.Delay)
		case Reset, PartialWrite:
			_ = c.Conn.Close()
			return 0, ErrInjected
		case Blackhole:
			// Writes were discarded, so this read blocks on the
			// underlying conn until its deadline fires — exactly a
			// blackholed network path.
		}
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if r, ok := c.inj.pick(); ok {
		switch r.Kind {
		case Latency, Stall:
			time.Sleep(r.Delay)
		case Reset:
			_ = c.Conn.Close()
			return 0, ErrInjected
		case PartialWrite:
			n, _ := c.Conn.Write(p[:(len(p)+1)/2])
			_ = c.Conn.Close()
			return n, ErrInjected
		case Blackhole:
			return len(p), nil
		}
	}
	return c.Conn.Write(p)
}

type faultListener struct {
	net.Listener
	inj *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}
