package faults

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a TCP chaos proxy: clients dial Proxy.Addr instead of the
// upstream, and every byte flows through the injector (when one is set).
// Cut partitions the client side — all live connections are severed and new
// ones are refused — and Restore heals the partition, which is how tests and
// the `sbexp -exp chaos` drill emulate killing (and reviving) the state
// store without losing its contents. Partition/Heal are the silent variant:
// bytes are blackholed (optionally per direction) while connections stay
// open, which is what trips timeout-based failure detectors rather than
// error paths.
type Proxy struct {
	upstream string
	inj      *Injector
	l        net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu
	cut    bool                  // guarded by mu
	closed bool                  // guarded by mu
	// dropToUp and dropToDown blackhole bytes per direction while a
	// Partition is active. Unlike cut, connections stay open — peers see
	// silence, not resets, so their deadlines (not their error paths) fire.
	dropToUp   bool // guarded by mu
	dropToDown bool // guarded by mu
	wg         sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and forwards to upstream. inj
// may be nil for a transparent proxy that only supports Cut/Restore.
func NewProxy(upstream string, inj *Injector) (*Proxy, error) {
	return NewProxyAt("127.0.0.1:0", upstream, inj)
}

// NewProxyAt is NewProxy on an explicit listen address, for out-of-process
// drills (cmd/sbproxy, the CI partition smoke) that need a port known up
// front.
func NewProxyAt(listen, upstream string, inj *Injector) (*Proxy, error) {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{upstream: upstream, inj: inj, l: l, conns: make(map[net.Conn]struct{})}
	go p.serve()
	return p, nil
}

// Addr returns the proxy's dial address.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Cut severs every live connection and refuses new ones until Restore. The
// upstream stays untouched: this is a network partition, not a data loss.
func (p *Proxy) Cut() {
	p.mu.Lock()
	p.cut = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
}

// Restore heals a Cut partition; new connections flow again.
func (p *Proxy) Restore() {
	p.mu.Lock()
	p.cut = false
	p.mu.Unlock()
}

// Partition blackholes the link in both directions: connections stay open
// (new ones are even accepted) but every byte is silently dropped. This is
// the asymmetric-failure-capable sibling of Cut — peers observe a stalled
// network, exactly what a real partition looks like, so timeout-based
// failure detectors are what trips, not connection errors.
func (p *Proxy) Partition() { p.PartitionDirs(true, true) }

// PartitionDirs blackholes individual directions: toUpstream drops
// client→upstream bytes, toClient drops upstream→client bytes. Setting only
// one emulates an asymmetric partition (e.g. the primary can still push but
// never hears acks).
func (p *Proxy) PartitionDirs(toUpstream, toClient bool) {
	p.mu.Lock()
	p.dropToUp = toUpstream
	p.dropToDown = toClient
	p.mu.Unlock()
}

// Heal lifts a Partition; buffered traffic flows again on live connections.
func (p *Proxy) Heal() {
	p.mu.Lock()
	p.dropToUp = false
	p.dropToDown = false
	p.mu.Unlock()
}

func (p *Proxy) dropping(toUpstream bool) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if toUpstream {
		return p.dropToUp
	}
	return p.dropToDown
}

// Close shuts the proxy down and waits for its relay goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.l.Close()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) serve() {
	for {
		down, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.cut || p.closed {
			p.mu.Unlock()
			_ = down.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.upstream, 2*time.Second)
		if err != nil {
			p.mu.Unlock()
			_ = down.Close()
			continue
		}
		p.conns[down] = struct{}{}
		p.conns[up] = struct{}{}
		p.wg.Add(2)
		p.mu.Unlock()

		// Faults apply on the client-facing side in both directions.
		src := net.Conn(down)
		if p.inj != nil {
			src = p.inj.Conn(down)
		}
		go p.relay(up, src, down, up, true)
		go p.relay(src, up, down, up, false)
	}
}

// relay copies src into dst until either side dies, then tears down both
// raw connections. Bytes read while the direction is partitioned are
// silently discarded — the reader keeps draining so the sender never sees
// backpressure, only silence.
func (p *Proxy) relay(dst io.Writer, src io.Reader, a, b net.Conn, toUpstream bool) {
	defer p.wg.Done()
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 && !p.dropping(toUpstream) {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	_ = a.Close()
	_ = b.Close()
	p.mu.Lock()
	delete(p.conns, a)
	delete(p.conns, b)
	p.mu.Unlock()
}
