package faults

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a TCP chaos proxy: clients dial Proxy.Addr instead of the
// upstream, and every byte flows through the injector (when one is set).
// Cut partitions the client side — all live connections are severed and new
// ones are refused — and Restore heals the partition, which is how tests and
// the `sbexp -exp chaos` drill emulate killing (and reviving) the state
// store without losing its contents.
type Proxy struct {
	upstream string
	inj      *Injector
	l        net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu
	cut    bool                  // guarded by mu
	closed bool                  // guarded by mu
	wg     sync.WaitGroup
}

// NewProxy listens on a fresh loopback port and forwards to upstream. inj
// may be nil for a transparent proxy that only supports Cut/Restore.
func NewProxy(upstream string, inj *Injector) (*Proxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{upstream: upstream, inj: inj, l: l, conns: make(map[net.Conn]struct{})}
	go p.serve()
	return p, nil
}

// Addr returns the proxy's dial address.
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Cut severs every live connection and refuses new ones until Restore. The
// upstream stays untouched: this is a network partition, not a data loss.
func (p *Proxy) Cut() {
	p.mu.Lock()
	p.cut = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
}

// Restore heals a Cut partition; new connections flow again.
func (p *Proxy) Restore() {
	p.mu.Lock()
	p.cut = false
	p.mu.Unlock()
}

// Close shuts the proxy down and waits for its relay goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.l.Close()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) serve() {
	for {
		down, err := p.l.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.cut || p.closed {
			p.mu.Unlock()
			_ = down.Close()
			continue
		}
		up, err := net.DialTimeout("tcp", p.upstream, 2*time.Second)
		if err != nil {
			p.mu.Unlock()
			_ = down.Close()
			continue
		}
		p.conns[down] = struct{}{}
		p.conns[up] = struct{}{}
		p.wg.Add(2)
		p.mu.Unlock()

		// Faults apply on the client-facing side in both directions.
		src := net.Conn(down)
		if p.inj != nil {
			src = p.inj.Conn(down)
		}
		go p.relay(up, src, down, up)
		go p.relay(src, up, down, up)
	}
}

// relay copies src into dst until either side dies, then tears down both
// raw connections.
func (p *Proxy) relay(dst io.Writer, src io.Reader, a, b net.Conn) {
	defer p.wg.Done()
	_, _ = io.Copy(dst, src)
	_ = a.Close()
	_ = b.Close()
	p.mu.Lock()
	delete(p.conns, a)
	delete(p.conns, b)
	p.mu.Unlock()
}
