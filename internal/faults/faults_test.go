package faults

import (
	"errors"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return l.Addr().String()
}

func roundTrip(t *testing.T, c net.Conn, payload string) (string, error) {
	t.Helper()
	if _, err := c.Write([]byte(payload)); err != nil {
		return "", err
	}
	buf := make([]byte, 256)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := c.Read(buf)
	return string(buf[:n]), err
}

func TestInjectorDeterminism(t *testing.T) {
	rules := []Rule{{Kind: Reset, Prob: 0.3}, {Kind: Latency, Prob: 0.5}}
	a := NewInjector(7, rules...)
	b := NewInjector(7, rules...)
	for i := 0; i < 200; i++ {
		ra, oka := a.pick()
		rb, okb := b.pick()
		if oka != okb || ra.Kind != rb.Kind {
			t.Fatalf("decision %d diverged: (%v,%v) vs (%v,%v)", i, ra.Kind, oka, rb.Kind, okb)
		}
	}
	c := NewInjector(8, rules...)
	diverged := false
	d := NewInjector(7, rules...)
	for i := 0; i < 200; i++ {
		rc, okc := c.pick()
		rd, okd := d.pick()
		if okc != okd || rc.Kind != rd.Kind {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds produced identical decision streams")
	}
}

func TestLatencyInjection(t *testing.T) {
	addr := echoServer(t)
	inj := NewInjector(1, Rule{Kind: Latency, Delay: 20 * time.Millisecond})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := inj.Conn(raw)
	start := time.Now()
	got, err := roundTrip(t, c, "ping")
	if err != nil || got != "ping" {
		t.Fatalf("round trip = %q, %v", got, err)
	}
	// One write fault + one read fault, 20ms each.
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Errorf("round trip took %v, want >= 40ms of injected latency", elapsed)
	}
}

func TestResetInjection(t *testing.T) {
	addr := echoServer(t)
	inj := NewInjector(1, Rule{Kind: Reset})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := inj.Conn(raw)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
	// The underlying conn is closed too.
	if _, err := raw.Write([]byte("y")); err == nil {
		t.Error("underlying conn still writable after injected reset")
	}
}

func TestPartialWriteInjection(t *testing.T) {
	addr := echoServer(t)
	inj := NewInjector(1, Rule{Kind: PartialWrite})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := inj.Conn(raw)
	n, err := c.Write([]byte("hello world"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n == 0 || n >= len("hello world") {
		t.Errorf("partial write wrote %d bytes, want a strict prefix", n)
	}
}

func TestBlackholeDiscardsWrites(t *testing.T) {
	addr := echoServer(t)
	inj := NewInjector(1, Rule{Kind: Blackhole})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := inj.Conn(raw)
	if n, err := c.Write([]byte("swallowed")); err != nil || n != len("swallowed") {
		t.Fatalf("blackholed write = %d, %v", n, err)
	}
	// Nothing reached the echo server, so the read must hit its deadline.
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	if _, err := c.Read(buf); err == nil {
		t.Error("read returned data through a blackhole")
	}
}

func TestRuleWindow(t *testing.T) {
	inj := NewInjector(1, Rule{Kind: Reset, From: time.Hour})
	if _, ok := inj.pick(); ok {
		t.Error("rule fired before its window opened")
	}
	inj2 := NewInjector(1, Rule{Kind: Reset, Until: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if _, ok := inj2.pick(); ok {
		t.Error("rule fired after its window closed")
	}
}

func TestProxyCutRestore(t *testing.T) {
	addr := echoServer(t)
	p, err := NewProxy(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c1, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if got, err := roundTrip(t, c1, "a"); err != nil || got != "a" {
		t.Fatalf("pre-cut round trip = %q, %v", got, err)
	}

	p.Cut()
	// The live connection dies...
	c1.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := roundTrip(t, c1, "b"); err == nil {
		t.Error("round trip survived Cut")
	}
	// ...and new connections are refused (accepted then dropped).
	c2, err := net.Dial("tcp", p.Addr())
	if err == nil {
		defer c2.Close()
		c2.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := roundTrip(t, c2, "c"); err == nil {
			t.Error("new connection served during Cut")
		}
	}

	p.Restore()
	c3, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if got, err := roundTrip(t, c3, "d"); err != nil || got != "d" {
		t.Fatalf("post-restore round trip = %q, %v", got, err)
	}
}

func TestProxyWithInjector(t *testing.T) {
	addr := echoServer(t)
	inj := NewInjector(1, Rule{Kind: Latency, Delay: 10 * time.Millisecond, Prob: 1})
	p, err := NewProxy(addr, inj)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if got, err := roundTrip(t, c, "z"); err != nil || got != "z" {
		t.Fatalf("round trip = %q, %v", got, err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Error("proxy did not apply injected latency")
	}
}

func TestProxyPartitionHeal(t *testing.T) {
	addr := echoServer(t)
	p, err := NewProxy(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got, err := roundTrip(t, c, "a"); err != nil || got != "a" {
		t.Fatalf("pre-partition round trip = %q, %v", got, err)
	}

	// Partition blackholes bytes but keeps connections open: the write
	// succeeds, the echo never comes back, and the reader times out rather
	// than erroring — the silence that trips timeout-based detectors.
	p.Partition()
	if _, err := c.Write([]byte("b")); err != nil {
		t.Fatalf("write into a partition errored: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 8)
	if n, err := c.Read(buf); err == nil {
		t.Fatalf("read %q through a partition", buf[:n])
	} else if nerr, ok := err.(net.Error); !ok || !nerr.Timeout() {
		t.Fatalf("partitioned read failed with %v, want a timeout", err)
	}
	// New connections are still accepted — the network looks up, just silent.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("dial during partition: %v", err)
	}
	defer c2.Close()

	// Heal: the same connection serves again (bytes dropped mid-partition
	// stay dropped; they were consumed by the relay, not buffered).
	p.Heal()
	if got, err := roundTrip(t, c, "c"); err != nil || got != "c" {
		t.Fatalf("post-heal round trip = %q, %v", got, err)
	}
	if got, err := roundTrip(t, c2, "d"); err != nil || got != "d" {
		t.Fatalf("partition-era connection after heal = %q, %v", got, err)
	}
}

func TestProxyPartitionAsymmetric(t *testing.T) {
	addr := echoServer(t)
	p, err := NewProxy(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Drop only upstream→client: the request reaches the echo server, the
	// reply is blackholed.
	p.PartitionDirs(false, true)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 8)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("reply crossed a return-path partition")
	}
	// Heal the return path: later round trips flow (the swallowed reply is
	// gone for good).
	p.Heal()
	if got, err := roundTrip(t, c, "y"); err != nil || got != "y" {
		t.Fatalf("post-heal round trip = %q, %v", got, err)
	}

	// Drop only client→upstream: the request itself vanishes.
	p.PartitionDirs(true, false)
	if _, err := c.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("request crossed a forward-path partition")
	}
	p.Heal()
	if got, err := roundTrip(t, c, "w"); err != nil || got != "w" {
		t.Fatalf("post-heal round trip = %q, %v", got, err)
	}
}
