// Package trace generates the synthetic Microsoft-Teams-like call workload
// the experiments run on, replacing the paper's 15 months of production call
// records (see DESIGN.md for the substitution argument).
//
// The generator reproduces, as statistical properties, everything the rest of
// the system depends on:
//
//   - per-country diurnal demand following local work hours, so demand peaks
//     shift across time zones (the paper's Fig 3 and the basis of peak-aware
//     provisioning);
//   - a heavy-tailed call-size and country-pair distribution, so a small
//     fraction of distinct call configs covers most calls (Fig 7c);
//   - per-config growth trends and weekly seasonality, so Holt-Winters
//     forecasting is meaningful (Fig 7a/7b);
//   - a participant join-time process with ~80% of participants joined five
//     minutes in (Fig 8), driving the config-freeze and migration logic;
//   - first-joiner locality: the large majority of calls have their majority
//     in the first joiner's country (§5.4 reports 95.2%);
//   - recurring meeting series with per-member attendance propensities, the
//     input to the §8 config predictor.
//
// Generation is deterministic for a given Config (including Seed).
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/model"
)

// Config parameterizes a Generator. Use DefaultConfig for the values the
// experiments use.
type Config struct {
	// Seed makes the trace reproducible.
	Seed int64
	// Start is the UTC start of the trace; it should be midnight.
	Start time.Time
	// Days is the horizon length.
	Days int
	// CallsPerDay is the approximate global call volume on day 0.
	CallsPerDay int
	// GrowthPerDay is the multiplicative daily volume growth (0.004 ≈
	// +12%/month, in line with pandemic-era conferencing growth).
	GrowthPerDay float64
	// InterCountryFrac is the probability that a call spans countries.
	InterCountryFrac float64
	// MediaMix is the probability of audio, screen-share, and video calls;
	// it must sum to 1.
	MediaMix [3]float64
	// SeriesPerThousand is how many recurring weekday meeting series exist
	// per thousand daily calls.
	SeriesPerThousand int
	// WeekendFactor scales weekend demand relative to weekdays; 0 means
	// the default of 0.2.
	WeekendFactor float64
	// SurgeDay, when SurgeFactor > 0, multiplies that day's ad-hoc volume
	// by SurgeFactor — a demand spike (regional event, outage elsewhere)
	// for stress-testing provisioning headroom.
	SurgeDay    int
	SurgeFactor float64
	// SurgeCountry optionally confines the surge to one country; empty
	// surges everywhere.
	SurgeCountry geo.CountryCode
	// World supplies countries and weights; nil means geo.DefaultWorld().
	World *geo.World
}

// DefaultConfig returns the generator configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Start:             time.Date(2022, 9, 5, 0, 0, 0, 0, time.UTC), // a Monday
		Days:              7,
		CallsPerDay:       20000,
		GrowthPerDay:      0.004,
		InterCountryFrac:  0.15,
		MediaMix:          [3]float64{0.30, 0.10, 0.60},
		SeriesPerThousand: 8,
		World:             nil,
	}
}

// Generator produces call records. It is not safe for concurrent use; create
// one per goroutine (generation is cheap and deterministic).
type Generator struct {
	cfg         Config
	world       *geo.World
	rng         *rand.Rand
	countries   []geo.Country
	totalWeight float64
	series      []*meetingSeries
	nextCallID  uint64
	nextUserID  uint64
}

// meetingSeries is one recurring weekday meeting.
type meetingSeries struct {
	id      uint64
	slot    int // slot of day when it occurs
	country geo.CountryCode
	members []seriesMember
	media   model.MediaType
}

type seriesMember struct {
	user    uint64
	country geo.CountryCode
	// attendProb is the member's per-instance attendance propensity; the
	// predictor's job is to learn it from history.
	attendProb float64
}

// NewGenerator validates the config and prepares a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("trace: Days must be positive, got %d", cfg.Days)
	}
	if cfg.CallsPerDay <= 0 {
		return nil, fmt.Errorf("trace: CallsPerDay must be positive, got %d", cfg.CallsPerDay)
	}
	if s := cfg.MediaMix[0] + cfg.MediaMix[1] + cfg.MediaMix[2]; math.Abs(s-1) > 1e-9 {
		return nil, fmt.Errorf("trace: MediaMix sums to %g, want 1", s)
	}
	if cfg.InterCountryFrac < 0 || cfg.InterCountryFrac > 1 {
		return nil, fmt.Errorf("trace: InterCountryFrac %g outside [0,1]", cfg.InterCountryFrac)
	}
	if cfg.WeekendFactor < 0 {
		return nil, fmt.Errorf("trace: negative WeekendFactor %g", cfg.WeekendFactor)
	}
	if cfg.WeekendFactor == 0 {
		cfg.WeekendFactor = 0.2
	}
	if cfg.SurgeFactor < 0 {
		return nil, fmt.Errorf("trace: negative SurgeFactor %g", cfg.SurgeFactor)
	}
	if cfg.SurgeFactor > 0 && (cfg.SurgeDay < 0 || cfg.SurgeDay >= cfg.Days) {
		return nil, fmt.Errorf("trace: SurgeDay %d outside horizon [0,%d)", cfg.SurgeDay, cfg.Days)
	}
	if cfg.SurgeCountry != "" {
		if cfg.World == nil {
			cfg.World = geo.DefaultWorld()
		}
		if _, ok := cfg.World.Country(cfg.SurgeCountry); !ok {
			return nil, fmt.Errorf("trace: unknown SurgeCountry %q", cfg.SurgeCountry)
		}
	}
	if cfg.World == nil {
		cfg.World = geo.DefaultWorld()
	}
	g := &Generator{
		cfg:        cfg,
		world:      cfg.World,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		countries:  cfg.World.Countries(),
		nextCallID: 1,
		nextUserID: 1,
	}
	for _, c := range g.countries {
		g.totalWeight += c.Weight
	}
	g.buildSeries()
	return g, nil
}

// Config returns the configuration the generator was built with (with the
// World default filled in).
func (g *Generator) Config() Config { return g.cfg }

// buildSeries creates the recurring weekday meetings, assigned to countries
// proportionally to weight.
func (g *Generator) buildSeries() {
	n := g.cfg.CallsPerDay * g.cfg.SeriesPerThousand / 1000
	for i := 0; i < n; i++ {
		host := g.sampleCountry()
		// Business meetings: during local work hours, on the half hour.
		localSlot := 16 + g.rng.Intn(20) // 08:00..17:30 local
		utcSlot := localSlot - int(math.Round(float64(hostOffsetMin(g.world, host))/30))
		utcSlot = ((utcSlot % model.SlotsPerDay) + model.SlotsPerDay) % model.SlotsPerDay
		nMembers := 3 + g.rng.Intn(18)
		members := make([]seriesMember, nMembers)
		for m := range members {
			country := host
			// Some members dial in from elsewhere.
			if g.rng.Float64() < 0.12 {
				country = g.sampleNeighborCountry(host)
			}
			members[m] = seriesMember{
				user:       g.newUser(),
				country:    country,
				attendProb: 0.3 + 0.65*g.rng.Float64(),
			}
		}
		g.series = append(g.series, &meetingSeries{
			id:      uint64(i + 1),
			slot:    utcSlot,
			country: host,
			members: members,
			media:   g.sampleMedia(),
		})
	}
}

func hostOffsetMin(w *geo.World, code geo.CountryCode) int {
	c, _ := w.Country(code)
	return c.UTCOffsetMin
}

func (g *Generator) newUser() uint64 {
	u := g.nextUserID
	g.nextUserID++
	return u
}

// EachCall generates the whole horizon in time order, invoking fn for every
// call record. Generation stops early if fn returns false. Records are owned
// by the callee and not retained by the generator, so arbitrarily long
// horizons stream in constant memory.
func (g *Generator) EachCall(fn func(*model.CallRecord) bool) {
	slots := g.cfg.Days * model.SlotsPerDay
	for s := 0; s < slots; s++ {
		slotStart := model.SlotStart(g.cfg.Start, s)
		day := s / model.SlotsPerDay
		slotOfDay := s % model.SlotsPerDay
		weekday := slotStart.Weekday()
		growth := math.Pow(1+g.cfg.GrowthPerDay, float64(day))

		// Recurring series fire on weekdays at their slot.
		if weekday != time.Saturday && weekday != time.Sunday {
			for _, ser := range g.series {
				if ser.slot != slotOfDay {
					continue
				}
				if rec := g.seriesInstance(ser, slotStart); rec != nil {
					if !fn(rec) {
						return
					}
				}
			}
		}

		// Ad-hoc calls per country, Poisson around the diurnal rate.
		for _, c := range g.countries {
			lambda := g.slotRate(c, slotOfDay, weekday) * growth
			if g.cfg.SurgeFactor > 0 && day == g.cfg.SurgeDay &&
				(g.cfg.SurgeCountry == "" || g.cfg.SurgeCountry == c.Code) {
				lambda *= g.cfg.SurgeFactor
			}
			n := g.poisson(lambda)
			for k := 0; k < n; k++ {
				if !fn(g.adHocCall(c, slotStart)) {
					return
				}
			}
		}
	}
}

// GenerateAll collects the full horizon into memory. Convenient for tests
// and small traces; prefer EachCall for long horizons.
func (g *Generator) GenerateAll() []*model.CallRecord {
	var out []*model.CallRecord
	g.EachCall(func(r *model.CallRecord) bool {
		out = append(out, r)
		return true
	})
	return out
}

// slotRate returns the expected number of ad-hoc calls from country c in a
// given 30-minute slot of day.
func (g *Generator) slotRate(c geo.Country, slotOfDay int, weekday time.Weekday) float64 {
	daily := float64(g.cfg.CallsPerDay) * c.Weight / g.totalWeight
	localMin := slotOfDay*30 + c.UTCOffsetMin
	localHour := math.Mod(float64(localMin)/60+48, 24)
	shape := diurnal(localHour)
	if weekday == time.Saturday || weekday == time.Sunday {
		shape *= g.cfg.WeekendFactor
	}
	// diurnalDayIntegral normalizes so the shape integrates to one day.
	return daily * shape * (0.5 / diurnalDayIntegral)
}

// diurnal is the relative intensity of conferencing at a local hour: a
// morning peak, a slightly smaller afternoon peak, and a quiet night.
func diurnal(h float64) float64 {
	morning := math.Exp(-sq(h-10.5) / (2 * sq(1.9)))
	afternoon := 0.85 * math.Exp(-sq(h-15.0)/(2*sq(2.2)))
	return 0.04 + morning + afternoon
}

// diurnalDayIntegral is ∫₀²⁴ diurnal(h) dh, computed once by Simpson's rule
// so slotRate normalizes exactly even if the shape changes.
var diurnalDayIntegral = func() float64 {
	const n = 4800 // even
	h := 24.0 / n
	sum := diurnal(0) + diurnal(24)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * diurnal(float64(i)*h)
	}
	return sum * h / 3
}()

func sq(x float64) float64 { return x * x }

// adHocCall builds one non-recurring call originating in country c.
func (g *Generator) adHocCall(origin geo.Country, slotStart time.Time) *model.CallRecord {
	size := g.sampleSize()
	counts := map[geo.CountryCode]int{origin.Code: size}
	if size >= 2 && g.rng.Float64() < g.cfg.InterCountryFrac {
		// Move a minority of participants to 1..2 partner countries.
		partners := 1
		if size >= 5 && g.rng.Float64() < 0.3 {
			partners = 2
		}
		moved := 0
		maxMove := (size - 1) / 2 // origin keeps a majority most of the time
		if maxMove < 1 {
			maxMove = 1
		}
		for p := 0; p < partners && moved < maxMove; p++ {
			other := g.sampleNeighborCountry(origin.Code)
			k := 1 + g.rng.Intn(maxMove-moved)
			if other == origin.Code {
				continue
			}
			counts[origin.Code] -= k
			counts[other] += k
			moved += k
		}
		// Occasionally the first joiner is in the minority (the 4.8% of
		// §5.4): flip so a partner country holds the majority.
		if g.rng.Float64() < 0.20 {
			other := g.sampleNeighborCountry(origin.Code)
			if other != origin.Code {
				k := counts[origin.Code]
				counts[origin.Code] = 1
				counts[other] += k - 1
			}
		}
	}
	return g.buildRecord(counts, origin.Code, g.sampleMedia(), slotStart, 0, nil)
}

// seriesInstance instantiates one occurrence of a recurring meeting; nil when
// nobody attends.
func (g *Generator) seriesInstance(ser *meetingSeries, slotStart time.Time) *model.CallRecord {
	counts := make(map[geo.CountryCode]int)
	var attendees []seriesMember
	for _, m := range ser.members {
		if g.rng.Float64() < m.attendProb {
			counts[m.country]++
			attendees = append(attendees, m)
		}
	}
	if len(attendees) == 0 {
		return nil
	}
	return g.buildRecord(counts, ser.country, ser.media, slotStart, ser.id, attendees)
}

// buildRecord assembles a CallRecord: hosting DC (nearest in-region to the
// first joiner, as the real-time path would choose), join offsets, per-leg
// media, and observed latencies (model latency with small lognormal noise).
func (g *Generator) buildRecord(counts map[geo.CountryCode]int, firstJoiner geo.CountryCode, media model.MediaType, slotStart time.Time, seriesID uint64, members []seriesMember) *model.CallRecord {
	start := slotStart.Add(time.Duration(g.rng.Int63n(int64(model.SlotDuration))))
	dc := g.world.NearestDC(firstJoiner, true)
	rec := &model.CallRecord{
		ID:       g.nextCallID,
		Start:    start,
		Duration: g.sampleDuration(),
		DC:       dc,
		SeriesID: seriesID,
	}
	g.nextCallID++

	// Flatten the spread into per-leg countries, first joiner first.
	var legCountries []geo.CountryCode
	var legUsers []uint64
	if members != nil {
		for _, m := range members {
			legCountries = append(legCountries, m.country)
			legUsers = append(legUsers, m.user)
		}
		// Make a first-joiner-country leg lead if present.
		for i, c := range legCountries {
			if c == firstJoiner {
				legCountries[0], legCountries[i] = legCountries[i], legCountries[0]
				legUsers[0], legUsers[i] = legUsers[i], legUsers[0]
				break
			}
		}
	} else {
		codes := make([]geo.CountryCode, 0, len(counts))
		for c := range counts {
			codes = append(codes, c)
		}
		sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
		legCountries = append(legCountries, firstJoiner)
		remaining := map[geo.CountryCode]int{}
		for c, n := range counts {
			remaining[c] = n
		}
		remaining[firstJoiner]--
		if remaining[firstJoiner] < 0 {
			// The flip above may have left the first joiner with one
			// participant slot; keep counts consistent.
			remaining[firstJoiner] = 0
		}
		for _, c := range codes {
			for k := 0; k < remaining[c]; k++ {
				legCountries = append(legCountries, c)
			}
		}
		for range legCountries {
			legUsers = append(legUsers, g.newUser())
		}
	}

	rec.Legs = make([]model.LegRecord, len(legCountries))
	for i, country := range legCountries {
		legMedia := model.Audio
		if media != model.Audio && (i == 0 || g.rng.Float64() < 0.6) {
			legMedia = media
		}
		rec.Legs[i] = model.LegRecord{
			Participant: legUsers[i],
			Country:     country,
			JoinOffset:  g.sampleJoinOffset(i),
			LatencyMs:   g.observedLatency(dc, country),
			Media:       legMedia,
		}
	}
	// Ensure the call's media type survives per-leg sampling.
	rec.Legs[0].Media = media
	return rec
}

// sampleSize draws the participant count: mostly small calls with a heavy
// tail, which concentrates calls onto few distinct configs (Fig 7c).
func (g *Generator) sampleSize() int {
	r := g.rng.Float64()
	switch {
	case r < 0.40:
		return 2
	case r < 0.58:
		return 3
	case r < 0.70:
		return 4
	case r < 0.79:
		return 5
	case r < 0.86:
		return 6
	case r < 0.91:
		return 7
	case r < 0.945:
		return 8
	}
	// Geometric tail for large meetings, capped at 200.
	n := 9
	for g.rng.Float64() < 0.82 && n < 200 {
		n++
	}
	return n
}

func (g *Generator) sampleMedia() model.MediaType {
	r := g.rng.Float64()
	switch {
	case r < g.cfg.MediaMix[0]:
		return model.Audio
	case r < g.cfg.MediaMix[0]+g.cfg.MediaMix[1]:
		return model.ScreenShare
	default:
		return model.Video
	}
}

// sampleJoinOffset draws when the i-th participant joins relative to call
// start. The mix is calibrated so ~80% of participants have joined by 300 s
// (the paper's Fig 8 and the A=300 s config freeze).
func (g *Generator) sampleJoinOffset(i int) time.Duration {
	if i == 0 {
		return 0
	}
	if g.rng.Float64() < 0.86 {
		// Early joiners: exponential with a two-minute mean.
		d := time.Duration(g.rng.ExpFloat64() * float64(120*time.Second))
		if d > 30*time.Minute {
			d = 30 * time.Minute
		}
		return d
	}
	// Latecomers: uniform between 5 and 25 minutes in.
	return 5*time.Minute + time.Duration(g.rng.Int63n(int64(20*time.Minute)))
}

func (g *Generator) sampleDuration() time.Duration {
	// Lognormal around 30 minutes, capped at 4 hours.
	d := time.Duration(math.Exp(math.Log(30*60)+0.5*g.rng.NormFloat64()) * float64(time.Second))
	if d < time.Minute {
		d = time.Minute
	}
	if d > 4*time.Hour {
		d = 4 * time.Hour
	}
	return d
}

// observedLatency is the modeled one-way latency with measurement noise; the
// records DB recovers the model value as the per-pair median.
func (g *Generator) observedLatency(dc int, country geo.CountryCode) float64 {
	base := g.world.Latency(dc, country)
	return base * math.Exp(0.08*g.rng.NormFloat64())
}

// sampleCountry draws a country proportionally to demand weight.
func (g *Generator) sampleCountry() geo.CountryCode {
	r := g.rng.Float64() * g.totalWeight
	for _, c := range g.countries {
		r -= c.Weight
		if r <= 0 {
			return c.Code
		}
	}
	return g.countries[len(g.countries)-1].Code
}

// sampleNeighborCountry draws a partner country for an inter-country call
// with a gravity model: closer and heavier countries are likelier, with a
// same-region boost (most business calls stay within a region).
func (g *Generator) sampleNeighborCountry(origin geo.CountryCode) geo.CountryCode {
	oc, _ := g.world.Country(origin)
	var cum []float64
	var total float64
	for _, c := range g.countries {
		if c.Code == origin {
			cum = append(cum, total)
			continue
		}
		dist := geo.HaversineKm(oc.Lat, oc.Lon, c.Lat, c.Lon)
		p := c.Weight / sq(1+dist/2500)
		if c.Region == oc.Region {
			p *= 4
		}
		total += p
		cum = append(cum, total)
	}
	r := g.rng.Float64() * total
	for i, c := range cum {
		if r <= c && (g.countries[i].Code != origin) {
			return g.countries[i].Code
		}
	}
	return origin
}

// poisson draws from Poisson(lambda), using Knuth's method for small lambda
// and a normal approximation above 30.
func (g *Generator) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*g.rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
