package trace

import (
	"math"
	"testing"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/model"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Days = 2
	cfg.CallsPerDay = 3000
	return cfg
}

func TestNewGeneratorValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Days = 0
	if _, err := NewGenerator(bad); err == nil {
		t.Error("Days=0 should error")
	}
	bad = DefaultConfig()
	bad.CallsPerDay = 0
	if _, err := NewGenerator(bad); err == nil {
		t.Error("CallsPerDay=0 should error")
	}
	bad = DefaultConfig()
	bad.MediaMix = [3]float64{0.5, 0.5, 0.5}
	if _, err := NewGenerator(bad); err == nil {
		t.Error("bad MediaMix should error")
	}
	bad = DefaultConfig()
	bad.InterCountryFrac = 1.5
	if _, err := NewGenerator(bad); err == nil {
		t.Error("bad InterCountryFrac should error")
	}
}

func TestDeterminism(t *testing.T) {
	g1, err := NewGenerator(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGenerator(smallConfig())
	a := g1.GenerateAll()
	b := g2.GenerateAll()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Start != b[i].Start || a[i].Config().Key() != b[i].Config().Key() {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestVolumeNearTarget(t *testing.T) {
	cfg := smallConfig()
	g, _ := NewGenerator(cfg)
	n := 0
	g.EachCall(func(*model.CallRecord) bool { n++; return true })
	want := cfg.Days * cfg.CallsPerDay
	if n < want*7/10 || n > want*13/10 {
		t.Errorf("generated %d calls, want within 30%% of %d", n, want)
	}
}

func TestRecordsWellFormed(t *testing.T) {
	cfg := smallConfig()
	g, _ := NewGenerator(cfg)
	w := geo.DefaultWorld()
	end := cfg.Start.AddDate(0, 0, cfg.Days)
	seen := map[uint64]bool{}
	g.EachCall(func(r *model.CallRecord) bool {
		if seen[r.ID] {
			t.Fatalf("duplicate call ID %d", r.ID)
		}
		seen[r.ID] = true
		if r.Start.Before(cfg.Start) || !r.Start.Before(end) {
			t.Fatalf("call %d starts at %v outside horizon", r.ID, r.Start)
		}
		if len(r.Legs) == 0 {
			t.Fatalf("call %d has no legs", r.ID)
		}
		if r.DC < 0 || r.DC >= len(w.DCs()) {
			t.Fatalf("call %d hosted at invalid DC %d", r.ID, r.DC)
		}
		if r.Legs[0].JoinOffset != 0 {
			t.Fatalf("call %d first leg joins at %v, want 0", r.ID, r.Legs[0].JoinOffset)
		}
		for _, l := range r.Legs {
			if l.LatencyMs <= 0 {
				t.Fatalf("call %d leg latency %g", r.ID, l.LatencyMs)
			}
			if _, ok := w.Country(l.Country); !ok {
				t.Fatalf("call %d leg in unknown country %q", r.ID, l.Country)
			}
			if l.Participant == 0 {
				t.Fatalf("call %d leg without participant ID", r.ID)
			}
		}
		if r.Duration <= 0 {
			t.Fatalf("call %d duration %v", r.ID, r.Duration)
		}
		return true
	})
	if len(seen) == 0 {
		t.Fatal("no calls generated")
	}
}

func TestJoinOffsetsMatchFig8(t *testing.T) {
	g, _ := NewGenerator(smallConfig())
	var within, total int
	g.EachCall(func(r *model.CallRecord) bool {
		for _, l := range r.Legs {
			total++
			if l.JoinOffset <= 300*time.Second {
				within++
			}
		}
		return true
	})
	frac := float64(within) / float64(total)
	// Paper Fig 8: ~80% of participants joined by 300 s.
	if frac < 0.72 || frac > 0.92 {
		t.Errorf("%.1f%% of participants joined by 300s, want ~80%%", 100*frac)
	}
}

func TestFirstJoinerMajorityLocality(t *testing.T) {
	g, _ := NewGenerator(smallConfig())
	var match, total int
	g.EachCall(func(r *model.CallRecord) bool {
		total++
		maj, _ := r.Config().Spread.Majority()
		if maj == r.Legs[0].Country {
			match++
		}
		return true
	})
	frac := float64(match) / float64(total)
	// §5.4: 95.2% of calls have their majority in the first joiner's
	// country. Allow a generous band.
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("first-joiner majority locality = %.1f%%, want ~95%%", 100*frac)
	}
}

func TestDiurnalPeaksShiftAcrossTimeZones(t *testing.T) {
	// The compute demand of Japan and the US must peak in different UTC
	// slots (the property behind the paper's Fig 3).
	cfg := smallConfig()
	cfg.Days = 1
	g, _ := NewGenerator(cfg)
	demand := map[geo.CountryCode][]float64{
		"JP": make([]float64, model.SlotsPerDay),
		"US": make([]float64, model.SlotsPerDay),
		"IN": make([]float64, model.SlotsPerDay),
	}
	g.EachCall(func(r *model.CallRecord) bool {
		slot := model.SlotOfDay(r.Start)
		cfgc := r.Config()
		for _, cc := range cfgc.Spread {
			if d, ok := demand[cc.Country]; ok {
				d[slot] += float64(cc.Count) * cfgc.Media.ComputeLoad()
			}
		}
		return true
	})
	peak := func(series []float64) int {
		best, bi := -1.0, 0
		for i, v := range series {
			if v > best {
				best, bi = v, i
			}
		}
		return bi
	}
	pJP, pUS := peak(demand["JP"]), peak(demand["US"])
	// Japan's work day peaks in the 0..9 UTC range; the US peaks in the
	// 14..23 UTC range (±6 offset, business hours).
	if h := pJP / 2; h > 10 {
		t.Errorf("JP demand peaks at %d UTC, want morning-UTC", h)
	}
	if h := pUS / 2; h < 13 {
		t.Errorf("US demand peaks at %d UTC, want afternoon-UTC", h)
	}
	if pJP == pUS {
		t.Error("JP and US demand peak in the same slot; diurnal shift missing")
	}
}

func TestMediaMixRespected(t *testing.T) {
	g, _ := NewGenerator(smallConfig())
	counts := map[model.MediaType]int{}
	total := 0
	g.EachCall(func(r *model.CallRecord) bool {
		counts[r.Config().Media]++
		total++
		return true
	})
	audioFrac := float64(counts[model.Audio]) / float64(total)
	videoFrac := float64(counts[model.Video]) / float64(total)
	if math.Abs(audioFrac-0.30) > 0.05 {
		t.Errorf("audio fraction %.2f, want ~0.30", audioFrac)
	}
	if math.Abs(videoFrac-0.60) > 0.05 {
		t.Errorf("video fraction %.2f, want ~0.60", videoFrac)
	}
}

func TestConfigConcentration(t *testing.T) {
	// A small share of distinct configs must cover a large share of calls
	// (paper Fig 7c: top 1% cover 93%). The synthetic world is smaller so
	// concentration is even stronger; assert a sane lower bound.
	g, _ := NewGenerator(smallConfig())
	counts := map[string]int{}
	total := 0
	g.EachCall(func(r *model.CallRecord) bool {
		counts[r.Config().Key()]++
		total++
		return true
	})
	if len(counts) < 100 {
		t.Fatalf("only %d distinct configs", len(counts))
	}
	freqs := make([]int, 0, len(counts))
	for _, n := range counts {
		freqs = append(freqs, n)
	}
	// Sort descending.
	for i := range freqs {
		for j := i + 1; j < len(freqs); j++ {
			if freqs[j] > freqs[i] {
				freqs[i], freqs[j] = freqs[j], freqs[i]
			}
		}
	}
	topN := len(freqs) / 10 // top 10%
	if topN == 0 {
		topN = 1
	}
	covered := 0
	for _, n := range freqs[:topN] {
		covered += n
	}
	if frac := float64(covered) / float64(total); frac < 0.5 {
		t.Errorf("top 10%% configs cover %.1f%% of calls, want >= 50%%", 100*frac)
	}
}

func TestSeriesRecurrence(t *testing.T) {
	cfg := smallConfig()
	cfg.Days = 5 // Mon..Fri
	g, _ := NewGenerator(cfg)
	instances := map[uint64]int{}
	g.EachCall(func(r *model.CallRecord) bool {
		if r.SeriesID != 0 {
			instances[r.SeriesID]++
		}
		return true
	})
	if len(instances) == 0 {
		t.Fatal("no recurring series instances generated")
	}
	recurring := 0
	for _, n := range instances {
		if n >= 3 {
			recurring++
		}
	}
	if recurring < len(instances)/2 {
		t.Errorf("only %d/%d series recurred >= 3 times over a work week", recurring, len(instances))
	}
}

func TestGrowthTrend(t *testing.T) {
	cfg := smallConfig()
	cfg.Days = 10
	cfg.GrowthPerDay = 0.10 // exaggerate for signal
	g, _ := NewGenerator(cfg)
	byDay := make([]int, cfg.Days)
	g.EachCall(func(r *model.CallRecord) bool {
		byDay[int(r.Start.Sub(cfg.Start).Hours())/24]++
		return true
	})
	// Compare same weekdays a week apart to dodge weekly seasonality.
	if byDay[8] <= byDay[1] {
		t.Errorf("no growth: day1=%d day8=%d", byDay[1], byDay[8])
	}
}

func TestSurgeDay(t *testing.T) {
	base := smallConfig()
	base.Days = 3
	surged := base
	surged.SurgeDay = 1
	surged.SurgeFactor = 3
	surged.SurgeCountry = "US"

	count := func(cfg Config) (day1US, day1JP int) {
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g.EachCall(func(r *model.CallRecord) bool {
			if r.SeriesID != 0 {
				return true
			}
			day := int(r.Start.Sub(cfg.Start).Hours()) / 24
			if day != 1 {
				return true
			}
			switch r.Legs[0].Country {
			case "US":
				day1US++
			case "JP":
				day1JP++
			}
			return true
		})
		return
	}
	baseUS, baseJP := count(base)
	surgeUS, surgeJP := count(surged)
	if surgeUS < 2*baseUS {
		t.Errorf("US surge day: %d calls vs %d base, want ~3x", surgeUS, baseUS)
	}
	// Other countries unaffected (within Poisson noise).
	if baseJP == 0 || float64(surgeJP) > 1.5*float64(baseJP) {
		t.Errorf("JP should not surge: %d vs %d", surgeJP, baseJP)
	}
}

func TestSurgeValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.SurgeFactor = 2
	cfg.SurgeDay = 99
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("surge day outside horizon should error")
	}
	cfg = smallConfig()
	cfg.SurgeFactor = -1
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("negative surge factor should error")
	}
	cfg = smallConfig()
	cfg.SurgeFactor = 2
	cfg.SurgeCountry = "ZZ"
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("unknown surge country should error")
	}
	cfg = smallConfig()
	cfg.WeekendFactor = -0.5
	if _, err := NewGenerator(cfg); err == nil {
		t.Error("negative weekend factor should error")
	}
}

func TestWeekendFactor(t *testing.T) {
	// Start Monday, 7 days: compare Sunday volume under two factors.
	quiet := smallConfig()
	quiet.Days = 7
	quiet.WeekendFactor = 0.05
	busy := quiet
	busy.WeekendFactor = 0.9

	sunday := func(cfg Config) int {
		g, err := NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		g.EachCall(func(r *model.CallRecord) bool {
			if r.Start.Weekday() == time.Sunday {
				n++
			}
			return true
		})
		return n
	}
	q, b := sunday(quiet), sunday(busy)
	if b < 5*q {
		t.Errorf("weekend factor ineffective: quiet=%d busy=%d", q, b)
	}
}

func TestEachCallEarlyStop(t *testing.T) {
	g, _ := NewGenerator(smallConfig())
	n := 0
	g.EachCall(func(*model.CallRecord) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Errorf("early stop after %d records, want 10", n)
	}
}

func TestPoissonMoments(t *testing.T) {
	g, _ := NewGenerator(smallConfig())
	for _, lambda := range []float64{0, 0.5, 3, 50} {
		var sum, sum2 float64
		const n = 20000
		for i := 0; i < n; i++ {
			v := float64(g.poisson(lambda))
			sum += v
			sum2 += v * v
		}
		mean := sum / n
		variance := sum2/n - mean*mean
		if math.Abs(mean-lambda) > 0.15*(lambda+1) {
			t.Errorf("poisson(%g) mean = %g", lambda, mean)
		}
		if lambda > 0 && math.Abs(variance-lambda) > 0.25*(lambda+1) {
			t.Errorf("poisson(%g) variance = %g", lambda, variance)
		}
	}
}

func TestDiurnalIntegralNormalized(t *testing.T) {
	// Riemann check against the Simpson constant.
	var sum float64
	const steps = 24 * 60
	for i := 0; i < steps; i++ {
		sum += diurnal(float64(i) / 60.0)
	}
	sum /= 60
	if math.Abs(sum-diurnalDayIntegral) > 0.01 {
		t.Errorf("integral mismatch: riemann %g vs simpson %g", sum, diurnalDayIntegral)
	}
}

func TestInterCountryFraction(t *testing.T) {
	cfg := smallConfig()
	g, _ := NewGenerator(cfg)
	inter, total := 0, 0
	g.EachCall(func(r *model.CallRecord) bool {
		if r.SeriesID != 0 {
			return true // series have their own cross-country process
		}
		total++
		if r.Config().InterCountry() {
			inter++
		}
		return true
	})
	frac := float64(inter) / float64(total)
	// Size-1 calls can't be inter-country, so realized fraction is lower
	// than the nominal 0.15 parameter.
	if frac < 0.06 || frac > 0.22 {
		t.Errorf("inter-country fraction %.3f, want ~0.10-0.15", frac)
	}
}
