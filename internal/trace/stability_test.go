package trace_test

import (
	"bytes"
	"testing"

	"switchboard/internal/model"
	"switchboard/internal/trace"
	"switchboard/internal/tracefile"
)

// generate runs one full generation pass and returns the serialized trace.
func generate(t *testing.T, cfg trace.Config) []byte {
	t.Helper()
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := tracefile.NewWriter(&buf)
	g.EachCall(func(r *model.CallRecord) bool {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
		return true
	})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSeedStability is the regression test behind the determinism analyzer:
// the paper's replay methodology assumes the same seed reproduces the same
// trace bit for bit, across runs and across map-iteration shuffles. Two
// independent generators with the same config must serialize to identical
// bytes, and a different seed must not.
func TestSeedStability(t *testing.T) {
	cfg := trace.DefaultConfig()
	cfg.Days = 2
	cfg.CallsPerDay = 400

	a := generate(t, cfg)
	b := generate(t, cfg)
	if len(a) == 0 {
		t.Fatal("generated an empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces: %d vs %d bytes", len(a), len(b))
	}

	cfg.Seed = 42
	c := generate(t, cfg)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical traces; the seed is not wired through")
	}
}
