package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHistogramCountLE(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "t", []float64{0.1, 0.25, 1})
	for _, v := range []float64{0.05, 0.2, 0.2, 0.9, 3} {
		h.Observe(v)
	}
	for _, tc := range []struct {
		bound float64
		want  uint64
	}{
		{0.1, 1},
		{0.25, 3},
		{1, 4},
		{0.15, 1}, // non-bound value truncates to the next lower bound
		{0.01, 0},
	} {
		if got := h.CountLE(tc.bound); got != tc.want {
			t.Errorf("CountLE(%v) = %d, want %d", tc.bound, got, tc.want)
		}
	}
	var nilH *Histogram
	if nilH.CountLE(1) != 0 {
		t.Error("nil CountLE != 0")
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("burn", "t", "window")
	v.With("5m").Set(2.5)
	v.With("1h").Set(0.5)
	if got := v.With("5m").Value(); got != 2.5 {
		t.Errorf("5m = %v, want 2.5", got)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`burn{window="5m"} 2.5`, `burn{window="1h"} 0.5`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
	var nilV *GaugeVec
	nilV.With("x").Set(1) // must not panic
}

// driveHTTP pushes n requests through m.Wrap, the last bad of them answering
// 500, so Totals advances deterministically.
func driveHTTP(m *HTTPMetrics, n, bad int) {
	i := 0
	h := m.Wrap("/t", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if i >= n-bad {
			w.WriteHeader(500)
		}
		i++
	}))
	for j := 0; j < n; j++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/t", nil))
	}
}

func TestSLOMonitorBurnRates(t *testing.T) {
	r := NewRegistry()
	lat := r.Histogram("sb_controller_place_seconds", "t", []float64{0.1, 0.25, 1})
	httpm := NewHTTPMetrics(r)
	m := NewSLOMonitor(r, SLOConfig{
		Latency:               lat,
		LatencyThreshold:      0.25,
		LatencyObjective:      0.99,
		HTTP:                  httpm,
		AvailabilityObjective: 0.999,
	})

	t0 := time.Unix(1700000000, 0)
	m.Sample(t0) // empty baseline

	// 100 placements, 10 over threshold: bad fraction 0.1 against a 1%
	// budget -> burn 10. 1000 requests, 1 5xx against 0.1% -> burn 1.
	for i := 0; i < 90; i++ {
		lat.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		lat.Observe(0.9)
	}
	driveHTTP(httpm, 1000, 1)
	m.Sample(t0.Add(time.Minute))

	sum := m.Summary()
	if got := sum["placement_latency_burn_5m"]; got < 9.99 || got > 10.01 {
		t.Errorf("latency burn 5m = %v, want 10", got)
	}
	if got := sum["availability_burn_5m"]; got < 0.99 || got > 1.01 {
		t.Errorf("availability burn 5m = %v, want 1", got)
	}
	// The 1h window sees the same deltas.
	if got := sum["placement_latency_burn_1h"]; got < 9.99 || got > 10.01 {
		t.Errorf("latency burn 1h = %v, want 10", got)
	}

	// Exposition carries the gauge families by their published names.
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`slo_placement_latency_burn{window="5m"} `,
		`slo_placement_latency_burn{window="1h"} `,
		`slo_availability_burn{window="5m"} `,
		`slo_availability_burn{window="1h"} `,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Two hours later with no new traffic both windows have empty deltas, so
	// burns decay to zero rather than latching the old incident.
	m.Sample(t0.Add(2 * time.Hour))
	m.Sample(t0.Add(2*time.Hour + time.Minute))
	sum = m.Summary()
	for k, v := range sum {
		if v != 0 {
			t.Errorf("%s = %v after quiet period, want 0", k, v)
		}
	}
}

func TestSLOMonitorNilSafety(t *testing.T) {
	var m *SLOMonitor
	m.Sample(time.Now())
	m.Stop()
	if m.Summary() != nil {
		t.Error("nil Summary != nil")
	}
	if NewSLOMonitor(nil, SLOConfig{}) != nil {
		t.Error("NewSLOMonitor(nil) != nil")
	}
	// A monitor with no sources samples without panicking and reports zeros.
	r := NewRegistry()
	m = NewSLOMonitor(r, SLOConfig{})
	m.Sample(time.Now())
	for k, v := range m.Summary() {
		if v != 0 {
			t.Errorf("%s = %v, want 0", k, v)
		}
	}
}

func TestSLOMonitorRunStop(t *testing.T) {
	r := NewRegistry()
	m := NewSLOMonitor(r, SLOConfig{})
	done := make(chan struct{})
	go func() { m.Run(time.Millisecond); close(done) }()
	time.Sleep(5 * time.Millisecond)
	m.Stop()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop")
	}
	m.Stop() // idempotent
}
