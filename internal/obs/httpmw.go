package obs

import (
	"net/http"
	"time"
)

// HTTPMetrics instruments HTTP routes with request counts (by route and
// status class), latency histograms (by route), and an in-flight gauge.
// Children are resolved once per route at wrap time, so the per-request cost
// is two atomic ops and one histogram observe — no label lookups, no
// allocations beyond the status-recording writer.
type HTTPMetrics struct {
	requests *CounterVec   // labels: route, code (status class: "2xx"...)
	latency  *HistogramVec // labels: route
	inflight *Gauge

	// total and err5xx aggregate across routes for the availability SLO
	// (see SLOMonitor). They are plain atomics, not registered families —
	// /metrics already carries the same information per route.
	total  Counter
	err5xx Counter
}

// NewHTTPMetrics registers the HTTP metric families on r. Nil-safe: a nil
// registry yields nil, and (*HTTPMetrics)(nil).Wrap returns the handler
// unchanged.
func NewHTTPMetrics(r *Registry) *HTTPMetrics {
	if r == nil {
		return nil
	}
	return &HTTPMetrics{
		requests: r.CounterVec("sb_http_requests_total",
			"HTTP requests served, by route pattern and status class.", "route", "code"),
		latency: r.HistogramVec("sb_http_request_seconds",
			"HTTP request service time in seconds, by route pattern.", nil, "route"),
		inflight: r.Gauge("sb_http_inflight_requests",
			"HTTP requests currently being served."),
	}
}

// StandbyHeader marks a 503 as correct standby behavior — a replica that is
// not the leader refusing work it must not do — rather than a failure. The
// middleware excludes such responses from the availability SLO's 5xx count:
// a hot standby would otherwise burn its own error budget by existing. The
// per-route status-class counters still see the 503, so the refusals remain
// visible in /metrics.
const StandbyHeader = "X-Switchboard-Standby"

// statusClasses cover every valid status code bucket; resolved per route at
// wrap time so the serve path never touches the vec maps.
var statusClasses = [...]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// Wrap instruments h under the given route label (typically the mux pattern,
// e.g. "POST /v1/call/start").
func (m *HTTPMetrics) Wrap(route string, h http.Handler) http.Handler {
	if m == nil {
		return h
	}
	var byClass [len(statusClasses)]*Counter
	for i, c := range statusClasses {
		byClass[i] = m.requests.With(route, c)
	}
	lat := m.latency.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Add(1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		lat.Observe(time.Since(start).Seconds())
		m.inflight.Add(-1)
		m.total.Inc()
		if sw.code >= 500 && sw.Header().Get(StandbyHeader) == "" {
			m.err5xx.Inc()
		}
		if i := sw.code/100 - 1; i >= 0 && i < len(byClass) {
			byClass[i].Inc()
		}
	})
}

// Totals returns the all-routes request and 5xx counts, the availability
// SLO's raw inputs. Zero on nil.
func (m *HTTPMetrics) Totals() (total, err5xx uint64) {
	if m == nil {
		return 0, 0
	}
	return m.total.Value(), m.err5xx.Value()
}

// statusWriter captures the response status code. It deliberately implements
// only http.ResponseWriter: the API serves small JSON bodies, so Flusher/
// Hijacker passthrough is not needed on these routes.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}
