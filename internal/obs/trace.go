package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"switchboard/internal/obs/span"
)

// Decision records one realtime placement/migration/failover decision: what
// the controller was asked, which DCs it considered, what it chose and why,
// and what the store path looked like when it decided. The ring of recent
// decisions is the "why did call X land on DC Y" debugging surface the
// /v1/stats aggregates cannot answer.
type Decision struct {
	// Seq is a monotonically increasing sequence number (ring-local).
	Seq uint64 `json:"seq"`
	// Time is when the decision was taken.
	Time time.Time `json:"time"`
	// Kind is the decision type: "start", "freeze", "failover".
	Kind string `json:"kind"`
	// Call is the call ID the decision concerns.
	Call uint64 `json:"call"`
	// Config is the call's config key when known ("" before freeze).
	Config string `json:"config,omitempty"`
	// Candidates are the DCs that were considered, in preference order.
	Candidates []int `json:"candidates,omitempty"`
	// Chosen is the DC the call is on after the decision (-1: none).
	Chosen int `json:"chosen"`
	// Prev is the DC the call was on before the decision (-1: new call).
	Prev int `json:"prev"`
	// Planned reports whether the choice debits an allocation-plan slot.
	Planned bool `json:"planned"`
	// Migrated reports whether the decision moved the call.
	Migrated bool `json:"migrated"`
	// Reason explains the choice: "first-joiner", "predicted", "plan",
	// "unplanned-majority", "reroute-failed-dc", "drain", "keep".
	Reason string `json:"reason"`
	// Shard is the control-plane shard that took the decision (-1 when the
	// controller is unsharded).
	Shard int `json:"shard"`
	// Degraded and JournalDepth snapshot the store path at decision time.
	Degraded     bool `json:"degraded,omitempty"`
	JournalDepth int  `json:"journal_depth,omitempty"`
	// Duration is how long the decision took end to end.
	Duration time.Duration `json:"duration_ns"`
}

// DecisionRing is a bounded ring buffer of recent decisions. Record
// overwrites the oldest entry once full, so memory is fixed regardless of
// call volume. Nil-safe: Record and Snapshot are no-ops on nil, letting
// callers wire "tracing off" as a nil ring.
type DecisionRing struct {
	mu   sync.Mutex
	buf  []Decision // guarded by mu; ring storage
	next int        // guarded by mu; index of the slot Record writes next
	size int        // guarded by mu; live entries (≤ len(buf))
	seq  uint64     // guarded by mu; total decisions ever recorded
}

// DefaultRingCapacity bounds the decision ring when callers pass 0.
const DefaultRingCapacity = 1024

// NewDecisionRing returns a ring holding the last capacity decisions
// (DefaultRingCapacity when capacity <= 0).
func NewDecisionRing(capacity int) *DecisionRing {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &DecisionRing{buf: make([]Decision, capacity)}
}

// Record appends a decision, stamping its sequence number.
func (r *DecisionRing) Record(d Decision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	d.Seq = r.seq
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.mu.Unlock()
}

// Snapshot returns up to n recent decisions, newest first (n <= 0: all).
func (r *DecisionRing) Snapshot(n int) []Decision {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.size {
		n = r.size
	}
	out := make([]Decision, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Total returns how many decisions were ever recorded (including ones the
// ring has since overwritten).
func (r *DecisionRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Handler serves the ring as JSON: {"total": N, "decisions": [...]} with the
// newest decision first. ?n=K limits the dump to the K most recent; invalid
// values answer 400 (validation shared with /debug/spans via
// span.ParseLimit).
func (r *DecisionRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n, err := span.ParseLimit(req.URL.Query().Get("n"))
		if err != nil {
			http.Error(w, `{"error":"`+err.Error()+`"}`, http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"total":     r.Total(),
			"decisions": r.Snapshot(n),
		})
	})
}
