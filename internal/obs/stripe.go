package obs

import (
	"sync/atomic"
	"unsafe"
)

// numStripes is the write-side fan-out of every striped cell. Power of two so
// stripe selection is a mask. Eight stripes cover the container fleet's core
// counts; beyond that the stripes stay correct, just slightly more contended.
const numStripes = 8

// stripedCell is one cache-line-padded counter lane. The padding keeps two
// stripes from sharing a 64-byte line, so concurrent writers on different
// CPUs never false-share: each Inc dirties only its own line.
type stripedCell struct {
	n atomic.Uint64
	_ [56]byte
}

// stripeIdx picks the calling goroutine's write lane. Go offers no portable
// per-CPU or goroutine-ID primitive, so the lane is derived from the address
// of a stack local: goroutine stacks live in distinct allocations, so
// concurrent goroutines spread across lanes, while a single goroutine maps
// stably to one lane between stack growths. Any lane is correct — readers sum
// all of them — so the hash only affects contention, never totals.
func stripeIdx() int {
	var marker byte
	a := uintptr(unsafe.Pointer(&marker))
	// Stacks are aligned; fold the distinguishing middle bits down.
	a ^= a >> 17
	return int(a>>10) & (numStripes - 1)
}
