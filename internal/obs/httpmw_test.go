package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPMiddleware(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	ok := m.Wrap("POST /v1/call/start", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	conflict := m.Wrap("POST /v1/call/start", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "dup", http.StatusConflict)
	}))
	boom := m.Wrap("GET /v1/stats", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	implicit := m.Wrap("GET /healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		// No explicit WriteHeader: implicit 200 must still be counted.
		_, _ = w.Write([]byte("ok"))
	}))

	for _, h := range []http.Handler{ok, ok, conflict, boom, implicit} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`sb_http_requests_total{route="POST /v1/call/start",code="2xx"} 2`,
		`sb_http_requests_total{route="POST /v1/call/start",code="4xx"} 1`,
		`sb_http_requests_total{route="GET /v1/stats",code="5xx"} 1`,
		`sb_http_requests_total{route="GET /healthz",code="2xx"} 1`,
		`sb_http_request_seconds_count{route="POST /v1/call/start"} 3`,
		`sb_http_inflight_requests 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestStandby503ExemptFromBurn: a 503 carrying the StandbyHeader is correct
// replica behavior, not an outage — it must stay out of the availability
// SLO's 5xx aggregate while remaining visible in the per-route counters.
func TestStandby503ExemptFromBurn(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	standby := m.Wrap("POST /v1/call/start", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(StandbyHeader, "1")
		http.Error(w, "standby", http.StatusServiceUnavailable)
	}))
	outage := m.Wrap("POST /v1/call/start", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusServiceUnavailable)
	}))
	for _, h := range []http.Handler{standby, standby, outage} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/call/start", nil))
	}
	total, err5xx := m.Totals()
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
	if err5xx != 1 {
		t.Fatalf("err5xx = %d, want 1 (standby 503s must not burn)", err5xx)
	}
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `sb_http_requests_total{route="POST /v1/call/start",code="5xx"} 3`) {
		t.Fatalf("per-route counter lost the standby 503s:\n%s", sb.String())
	}
}
