package obs

import (
	"sync"
	"time"
)

// SLO window lengths. Burn rates over a short and a long window are the
// standard multi-window alerting pair: the 5m window catches fast burns, the
// 1h window filters noise.
const (
	sloShortWindow = 5 * time.Minute
	sloLongWindow  = time.Hour
)

// DefaultSLOSampleInterval is how often the monitor snapshots its sources
// when driven by Run.
const DefaultSLOSampleInterval = 5 * time.Second

// SLOConfig parameterizes an SLOMonitor.
type SLOConfig struct {
	// Latency is the placement-latency histogram (the controller's
	// sb_controller_place_seconds). Nil disables the latency SLO.
	Latency *Histogram
	// LatencyThreshold is the "fast enough" bound in seconds. Pick an exact
	// bucket bound of the histogram (see Histogram.CountLE). Default 0.25.
	LatencyThreshold float64
	// LatencyObjective is the target fraction of placements under the
	// threshold, e.g. 0.99. Default 0.99.
	LatencyObjective float64
	// HTTP supplies the all-routes request/5xx totals for the availability
	// SLO. Nil disables the availability SLO.
	HTTP *HTTPMetrics
	// AvailabilityObjective is the target non-5xx fraction, e.g. 0.999.
	// Default 0.999.
	AvailabilityObjective float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyThreshold <= 0 {
		c.LatencyThreshold = 0.25
	}
	if c.LatencyObjective <= 0 || c.LatencyObjective >= 1 {
		c.LatencyObjective = 0.99
	}
	if c.AvailabilityObjective <= 0 || c.AvailabilityObjective >= 1 {
		c.AvailabilityObjective = 0.999
	}
	return c
}

// sloSample is one periodic snapshot of the cumulative sources.
type sloSample struct {
	t        time.Time
	latTotal uint64 // placements observed
	latGood  uint64 // placements under the threshold
	reqTotal uint64 // HTTP requests served
	req5xx   uint64 // HTTP 5xx responses
}

// SLOMonitor turns cumulative histograms/counters into windowed error-budget
// burn rates:
//
//	burn = (bad fraction over the window) / (1 - objective)
//
// A burn of 1.0 consumes the budget exactly at the sustainable rate; > 1
// means the SLO is being violated if sustained. The monitor keeps a bounded
// ring of snapshots (enough to cover the 1h window) and publishes two gauge
// families, each labeled by window ("5m", "1h"):
//
//	slo_placement_latency_burn
//	slo_availability_burn
//
// Sample is deterministic and callable directly from tests; Run drives it on
// a ticker. Nil-safe: a nil monitor's Sample/Summary/Stop are no-ops.
type SLOMonitor struct {
	cfg SLOConfig

	latBurn5m, latBurn1h     *Gauge
	availBurn5m, availBurn1h *Gauge

	mu      sync.Mutex
	samples []sloSample // guarded by mu; ring, oldest overwritten
	next    int         // guarded by mu
	size    int         // guarded by mu

	stopOnce sync.Once
	stopCh   chan struct{}
}

// NewSLOMonitor registers the burn-rate gauge families on r and returns a
// monitor reading from cfg's sources. Nil-safe: a nil registry yields nil.
func NewSLOMonitor(r *Registry, cfg SLOConfig) *SLOMonitor {
	if r == nil {
		return nil
	}
	cfg = cfg.withDefaults()
	burnLat := r.GaugeVec("slo_placement_latency_burn",
		"Placement-latency SLO error-budget burn rate (1.0 = budget consumed exactly at the sustainable rate), by window.", "window")
	burnAvail := r.GaugeVec("slo_availability_burn",
		"Availability SLO (non-5xx) error-budget burn rate, by window.", "window")
	// Ring sized to hold the long window at the default cadence, +1 so the
	// window's left edge survives.
	n := int(sloLongWindow/DefaultSLOSampleInterval) + 1
	return &SLOMonitor{
		cfg:         cfg,
		latBurn5m:   burnLat.With("5m"),
		latBurn1h:   burnLat.With("1h"),
		availBurn5m: burnAvail.With("5m"),
		availBurn1h: burnAvail.With("1h"),
		samples:     make([]sloSample, n),
		stopCh:      make(chan struct{}),
	}
}

// Sample snapshots the sources at now, updates the burn gauges, and returns.
// Deterministic given the sources, so tests drive it directly.
func (m *SLOMonitor) Sample(now time.Time) {
	if m == nil {
		return
	}
	cur := sloSample{t: now}
	if m.cfg.Latency != nil {
		cur.latTotal = m.cfg.Latency.Count()
		cur.latGood = m.cfg.Latency.CountLE(m.cfg.LatencyThreshold)
	}
	cur.reqTotal, cur.req5xx = m.cfg.HTTP.Totals()

	m.mu.Lock()
	m.samples[m.next] = cur
	m.next = (m.next + 1) % len(m.samples)
	if m.size < len(m.samples) {
		m.size++
	}
	lat5, avail5 := m.burnsLocked(cur, now.Add(-sloShortWindow))
	lat1, avail1 := m.burnsLocked(cur, now.Add(-sloLongWindow))
	m.mu.Unlock()

	m.latBurn5m.Set(lat5)
	m.latBurn1h.Set(lat1)
	m.availBurn5m.Set(avail5)
	m.availBurn1h.Set(avail1)
}

// burnsLocked computes the latency and availability burns between the oldest
// buffered sample not before cutoff (falling back to the oldest overall) and
// cur. Callers hold m.mu.
//
//sblint:holds mu
func (m *SLOMonitor) burnsLocked(cur sloSample, cutoff time.Time) (lat, avail float64) {
	// The base is the newest sample at or before the window's left edge, so
	// the delta covers the whole window; with no such sample (early life),
	// the oldest buffered sample stands in. The ring is small (≤721
	// entries) and Sample runs a few times a minute, so the linear
	// oldest→newest scan is irrelevant.
	base := cur
	havePre := false
	for i := m.size; i >= 1; i-- {
		s := m.samples[(m.next-i+len(m.samples))%len(m.samples)]
		if s.t.Before(cutoff) {
			base = s
			havePre = true
			continue
		}
		if !havePre {
			base = s
		}
		break
	}
	if m.cfg.Latency != nil {
		total := cur.latTotal - base.latTotal
		good := cur.latGood - base.latGood
		if total > 0 {
			lat = (float64(total-good) / float64(total)) / (1 - m.cfg.LatencyObjective)
		}
	}
	if m.cfg.HTTP != nil {
		total := cur.reqTotal - base.reqTotal
		bad := cur.req5xx - base.req5xx
		if total > 0 {
			avail = (float64(bad) / float64(total)) / (1 - m.cfg.AvailabilityObjective)
		}
	}
	return lat, avail
}

// Run samples every interval (DefaultSLOSampleInterval when <= 0) until Stop.
// Call in a goroutine.
func (m *SLOMonitor) Run(interval time.Duration) {
	if m == nil {
		return
	}
	if interval <= 0 {
		interval = DefaultSLOSampleInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			m.Sample(now)
		case <-m.stopCh:
			return
		}
	}
}

// Stop terminates Run. Safe to call more than once, or without Run.
func (m *SLOMonitor) Stop() {
	if m == nil {
		return
	}
	m.stopOnce.Do(func() { close(m.stopCh) })
}

// Summary returns the current burn rates keyed for /readyz embedding.
func (m *SLOMonitor) Summary() map[string]float64 {
	if m == nil {
		return nil
	}
	return map[string]float64{
		"placement_latency_burn_5m": m.latBurn5m.Value(),
		"placement_latency_burn_1h": m.latBurn1h.Value(),
		"availability_burn_5m":      m.availBurn5m.Value(),
		"availability_burn_1h":      m.availBurn1h.Value(),
	}
}
