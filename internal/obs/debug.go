package obs

import (
	"net/http"
	"net/http/pprof"

	"switchboard/internal/obs/span"
)

// DebugMux assembles the operator-facing debug surface cmd/switchboard
// serves on -debug-addr, deliberately separate from the service API so
// telemetry and profiling are never exposed on the call-control port:
//
//	GET /metrics        Prometheus text exposition of reg
//	GET /debug/trace    JSON dump of the decision ring (?n= limits)
//	GET /debug/spans    JSON dump of the span ring (?n= or ?trace=<hex>)
//	GET /debug/pprof/*  net/http/pprof profiles (CPU, heap, goroutine, ...)
//
// reg, ring, and spans may be nil; the corresponding endpoints then serve
// empty output rather than 404, keeping scrapers and dashboards happy during
// partial rollouts.
func DebugMux(reg *Registry, ring *DecisionRing, spans *span.Ring) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", reg.Handler())
	mux.Handle("GET /debug/trace", ring.Handler())
	mux.Handle("GET /debug/spans", spans.Handler())
	// net/http/pprof self-registers on DefaultServeMux only; mount the
	// handlers explicitly so the debug mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
