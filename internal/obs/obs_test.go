package obs

import (
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sb_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("sb_test_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	// Re-registering the same name returns the same metric.
	if r.Counter("sb_test_ops_total", "ops") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestNilSafety(t *testing.T) {
	// Every sink must be a no-op on nil: instrumented code never guards.
	var c *Counter
	var g *Gauge
	var h *Histogram
	var ring *DecisionRing
	var reg *Registry
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	ring.Record(Decision{})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || ring.Total() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if reg.Counter("x", "") != nil || reg.CounterVec("x", "", "l") != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	var hv *HistogramVec
	var cv *CounterVec
	hv.With("a").Observe(1)
	cv.With("a").Inc()
	var hm *HTTPMetrics
	if got := hm.Wrap("r", nil); got != nil {
		t.Fatal("nil HTTPMetrics.Wrap must return the handler unchanged")
	}
	if n, err := reg.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatalf("nil registry WriteTo = %d, %v", n, err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sb_test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative buckets: 1, 3, 4, 5(+Inf).
	for _, want := range []string{
		`sb_test_seconds_bucket{le="0.1"} 1`,
		`sb_test_seconds_bucket{le="1"} 3`,
		`sb_test_seconds_bucket{le="10"} 4`,
		`sb_test_seconds_bucket{le="+Inf"} 5`,
		`sb_test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecChildrenAndLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("sb_test_cmds_total", "commands", "cmd")
	v.With("HSET").Add(2)
	v.With("GET").Inc()
	if v.With("HSET") != v.With("HSET") {
		t.Fatal("vec must cache children")
	}
	hv := r.HistogramVec("sb_test_cmd_seconds", "per-command latency", []float64{1}, "cmd")
	hv.With("HSET").Observe(0.5)
	esc := r.CounterVec("sb_test_weird_total", "escaping", "v")
	esc.With("a\"b\\c\nd").Inc()

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`sb_test_cmds_total{cmd="GET"} 1`,
		`sb_test_cmds_total{cmd="HSET"} 2`,
		`sb_test_cmd_seconds_bucket{cmd="HSET",le="1"} 1`,
		`sb_test_cmd_seconds_sum{cmd="HSET"} 0.5`,
		`sb_test_cmd_seconds_count{cmd="HSET"} 1`,
		// `a"b\c<newline>d` escapes to `a\"b\\c\nd`.
		`sb_test_weird_total{v="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// expositionLine matches one valid sample line of the text format.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|[+-]Inf|NaN)$`)

// TestExpositionFormatValid lint-checks every emitted line: HELP/TYPE
// comments precede their family's samples, sample lines parse, families are
// sorted, and no family appears twice.
func TestExpositionFormatValid(t *testing.T) {
	r := NewRegistry()
	r.Counter("sb_b_total", "b help").Inc()
	r.Gauge("sb_a_gauge", "a help").Set(2.5)
	r.Histogram("sb_c_seconds", "c help", nil).Observe(0.003)
	r.CounterVec("sb_d_total", "d help", "k").With("v1").Inc()

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	var families []string
	cur := ""
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.SplitN(line, " ", 4)[2]
			families = append(families, f)
			cur = f
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			if f := strings.SplitN(line, " ", 4)[2]; f != cur {
				t.Errorf("TYPE for %q under HELP for %q", f, cur)
			}
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid sample line %q", line)
		}
		if !strings.HasPrefix(line, cur) {
			t.Errorf("sample %q outside its family %q", line, cur)
		}
	}
	for i := 1; i < len(families); i++ {
		if families[i-1] >= families[i] {
			t.Errorf("families not sorted/unique: %v", families)
		}
	}
	if len(families) != 4 {
		t.Errorf("families = %v, want 4", families)
	}
}

func TestConcurrentSinks(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sb_test_total", "t")
	h := r.Histogram("sb_test_h_seconds", "t", []float64{1})
	g := r.Gauge("sb_test_g", "t")
	v := r.CounterVec("sb_test_v_total", "t", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
				g.Add(1)
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 || v.With("a").Value() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d g=%v v=%d", c.Value(), h.Count(), g.Value(), v.With("a").Value())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("sb_bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("sb_bench_seconds", "bench", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}
