package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// WriteTo renders every registered family in Prometheus text exposition
// format (version 0.0.4), families sorted by name and vec children sorted by
// label values, so output is deterministic for a given metric state.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}

	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		f.render(cw)
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Handler returns an http.Handler serving the exposition (the /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = r.WriteTo(w)
	})
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) WriteString(s string) {
	if cw.err != nil {
		return
	}
	n, err := io.WriteString(cw.w, s)
	cw.n += int64(n)
	cw.err = err
}

func (f *family) render(w *countingWriter) {
	w.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
	w.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n")
	if f.labels == nil {
		switch f.kind {
		case kindCounter:
			w.WriteString(f.name + " " + formatUint(f.counter.Value()) + "\n")
		case kindGauge:
			w.WriteString(f.name + " " + formatFloat(f.gauge.Value()) + "\n")
		case kindHistogram:
			renderHistogram(w, f.name, "", f.hist)
		}
		return
	}

	for _, c := range f.sortedChildren() {
		lbl := renderLabels(f.labels, c.labelVals)
		switch f.kind {
		case kindCounter:
			w.WriteString(f.name + "{" + lbl + "} " + formatUint(c.counter.Value()) + "\n")
		case kindGauge:
			w.WriteString(f.name + "{" + lbl + "} " + formatFloat(c.gauge.Value()) + "\n")
		case kindHistogram:
			renderHistogram(w, f.name, lbl, c.hist)
		}
	}
}

// sortedChildren snapshots a vec family's children, sorted by label values.
func (f *family) sortedChildren() []*child {
	m := f.kids.Load()
	if m == nil {
		return nil
	}
	children := make([]*child, 0, len(*m))
	for _, c := range *m {
		children = append(children, c)
	}
	sort.Slice(children, func(i, j int) bool {
		return labelKey(children[i].labelVals) < labelKey(children[j].labelVals)
	})
	return children
}

// renderHistogram emits the cumulative _bucket series plus _sum and _count.
// extraLabels is a pre-rendered `k="v",...` fragment or "".
func renderHistogram(w *countingWriter, name, extraLabels string, h *Histogram) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.BucketCount(i)
		w.WriteString(name + "_bucket{" + joinLabels(extraLabels, `le="`+formatFloat(b)+`"`) + "} " + formatUint(cum) + "\n")
	}
	cum += h.BucketCount(len(h.bounds))
	w.WriteString(name + "_bucket{" + joinLabels(extraLabels, `le="+Inf"`) + "} " + formatUint(cum) + "\n")
	suffix := ""
	if extraLabels != "" {
		suffix = "{" + extraLabels + "}"
	}
	w.WriteString(name + "_sum" + suffix + " " + formatFloat(h.Sum()) + "\n")
	w.WriteString(name + "_count" + suffix + " " + formatUint(h.Count()) + "\n")
}

func joinLabels(extra, le string) string {
	if extra == "" {
		return le
	}
	return extra + "," + le
}

func renderLabels(names, vals []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		v := vals[i]
		out += n + `="` + escapeLabel(v) + `"`
	}
	return out
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline per the exposition format.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// escapeLabel escapes backslash, quote, and newline in label values.
func escapeLabel(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
