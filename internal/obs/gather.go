package obs

import (
	"sort"
)

// This file is the structured (non-text) scrape surface: Gather snapshots a
// registry into JSON-friendly family values, and MergeFamilies folds the
// snapshots of many fleet instances into one label-wise view. Counters and
// histogram buckets merge in exact integer arithmetic, so the merged sums
// equal the per-instance sums; gauges merge by addition too, which is the
// right semantic for the level-style gauges this repo exposes (in-flight
// requests, journal depth, active calls) — ratio-style gauges (SLO burns)
// should be read per instance.

// SnapExemplar is one histogram bucket's exemplar in a snapshot: the trace ID
// (sbtrace/debug-spans resolvable hex form) and the observed value that
// landed it there.
type SnapExemplar struct {
	Bucket int     `json:"bucket"`
	Trace  string  `json:"trace"`
	Value  float64 `json:"value"`
}

// SnapPoint is one sample (one label set) of a family snapshot. Counters use
// Count (exact integer); gauges use Value; histograms use Buckets (non-
// cumulative, +Inf last) plus Count and Sum.
type SnapPoint struct {
	Labels    []string       `json:"labels,omitempty"`
	Value     float64        `json:"value,omitempty"`
	Count     uint64         `json:"count,omitempty"`
	Sum       float64        `json:"sum,omitempty"`
	Buckets   []uint64       `json:"buckets,omitempty"`
	Exemplars []SnapExemplar `json:"exemplars,omitempty"`
}

// SnapFamily is one metric family snapshot.
type SnapFamily struct {
	Name       string      `json:"name"`
	Help       string      `json:"help,omitempty"`
	Kind       string      `json:"kind"`
	LabelNames []string    `json:"label_names,omitempty"`
	Bounds     []float64   `json:"bounds,omitempty"`
	Points     []SnapPoint `json:"points"`
}

// Gather snapshots every registered family, families sorted by name and
// points sorted by label values — the machine-readable twin of WriteTo, and
// the payload /metrics/instance serves for fleet federation. Nil-safe.
func (r *Registry) Gather() []SnapFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]SnapFamily, 0, len(fams))
	for _, f := range fams {
		sf := SnapFamily{
			Name:       f.name,
			Help:       f.help,
			Kind:       f.kind.String(),
			LabelNames: f.labels,
		}
		if f.labels == nil {
			switch f.kind {
			case kindCounter:
				sf.Points = []SnapPoint{{Count: f.counter.Value()}}
			case kindGauge:
				sf.Points = []SnapPoint{{Value: f.gauge.Value()}}
			case kindHistogram:
				sf.Bounds = f.hist.Bounds()
				sf.Points = []SnapPoint{snapHistogram(f.hist, nil)}
			}
		} else {
			for _, c := range f.sortedChildren() {
				switch f.kind {
				case kindCounter:
					sf.Points = append(sf.Points, SnapPoint{Labels: c.labelVals, Count: c.counter.Value()})
				case kindGauge:
					sf.Points = append(sf.Points, SnapPoint{Labels: c.labelVals, Value: c.gauge.Value()})
				case kindHistogram:
					if sf.Bounds == nil {
						sf.Bounds = c.hist.Bounds()
					}
					sf.Points = append(sf.Points, snapHistogram(c.hist, c.labelVals))
				}
			}
		}
		out = append(out, sf)
	}
	return out
}

func snapHistogram(h *Histogram, labels []string) SnapPoint {
	nb := len(h.Bounds()) + 1
	p := SnapPoint{
		Labels:  labels,
		Count:   h.Count(),
		Sum:     h.Sum(),
		Buckets: make([]uint64, nb),
	}
	for i := 0; i < nb; i++ {
		p.Buckets[i] = h.BucketCount(i)
	}
	for i := 0; i < nb; i++ {
		if trace, v, ok := h.Exemplar(i); ok {
			p.Exemplars = append(p.Exemplars, SnapExemplar{
				Bucket: i,
				Trace:  formatTraceID(trace),
				Value:  v,
			})
		}
	}
	return p
}

// formatTraceID renders a 64-bit trace ID in the canonical 16-hex-digit form
// span.ID uses, so exemplars resolve directly against /debug/spans?trace= and
// sbtrace (duplicated here rather than imported to keep obs span-free).
func formatTraceID(id uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// MergeFamilies folds per-instance snapshots into one label-wise merged view.
// Counters sum exactly; histogram buckets, counts, and sums add point-wise;
// gauges add. Exemplars on a merged bucket keep the highest-valued exemplar
// across instances — the slowest observation is the one worth chasing into
// sbtrace. Families and points come back sorted, so the merge is
// deterministic regardless of instance order. Instances whose shapes disagree
// (same family name, different kind or bucket bounds) keep the first-seen
// shape and skip mismatched contributions rather than corrupting sums.
func MergeFamilies(instances ...[]SnapFamily) []SnapFamily {
	byName := map[string]*SnapFamily{}
	points := map[string]map[string]*SnapPoint{} // family -> labelKey -> merged point
	var order []string
	for _, fams := range instances {
		for _, f := range fams {
			mf, ok := byName[f.Name]
			if !ok {
				cp := SnapFamily{Name: f.Name, Help: f.Help, Kind: f.Kind, LabelNames: f.LabelNames, Bounds: f.Bounds}
				byName[f.Name] = &cp
				points[f.Name] = map[string]*SnapPoint{}
				order = append(order, f.Name)
				mf = &cp
			}
			if mf.Kind != f.Kind || !sameBounds(mf.Bounds, f.Bounds) {
				continue // shape mismatch; first-seen shape wins
			}
			for _, p := range f.Points {
				key := labelKey(p.Labels)
				mp, ok := points[f.Name][key]
				if !ok {
					cp := SnapPoint{Labels: p.Labels}
					if p.Buckets != nil {
						cp.Buckets = make([]uint64, len(p.Buckets))
					}
					points[f.Name][key] = &cp
					mp = &cp
				}
				mp.Value += p.Value
				mp.Count += p.Count
				mp.Sum += p.Sum
				if len(mp.Buckets) == len(p.Buckets) {
					for i, b := range p.Buckets {
						mp.Buckets[i] += b
					}
				}
				for _, e := range p.Exemplars {
					mergeExemplar(mp, e)
				}
			}
		}
	}
	sort.Strings(order)
	out := make([]SnapFamily, 0, len(order))
	for _, name := range order {
		mf := byName[name]
		keys := make([]string, 0, len(points[name]))
		for k := range points[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			mf.Points = append(mf.Points, *points[name][k])
		}
		out = append(out, *mf)
	}
	return out
}

// mergeExemplar keeps at most one exemplar per bucket: the highest value.
func mergeExemplar(p *SnapPoint, e SnapExemplar) {
	for i, have := range p.Exemplars {
		if have.Bucket == e.Bucket {
			if e.Value > have.Value {
				p.Exemplars[i] = e
			}
			return
		}
	}
	p.Exemplars = append(p.Exemplars, e)
	sort.Slice(p.Exemplars, func(i, j int) bool { return p.Exemplars[i].Bucket < p.Exemplars[j].Bucket })
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
