package obs

import (
	"fmt"
	"sync"
	"testing"
)

// The striping invariant: any interleaving of concurrent writers must leave
// the lazily aggregated totals exactly equal to the sum of what was written —
// stripes shift contention, never counts. These tests are the -race hammer
// for that claim.

func TestStripedCounterExactUnderHammer(t *testing.T) {
	const writers, perWriter = 16, 10000
	c := &Counter{}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					c.Add(2)
				}
			}
		}(w)
	}
	wg.Wait()
	// Each writer: perWriter/2 Incs + perWriter/2 Add(2)s.
	want := uint64(writers * (perWriter/2 + perWriter))
	if got := c.Value(); got != want {
		t.Fatalf("Counter.Value() = %d, want %d", got, want)
	}
}

func TestStripedHistogramExactUnderHammer(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	h := newHistogram(bounds)
	const writers, perWriter = 16, 8000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Integer-valued observations keep the float sum exact.
				h.ObserveExemplar(float64(i%10), uint64(w*perWriter+i+1))
			}
		}(w)
	}
	wg.Wait()

	total := uint64(writers * perWriter)
	if got := h.Count(); got != total {
		t.Fatalf("Count() = %d, want %d", got, total)
	}
	// Sum of 0..9 per 10 observations = 45.
	wantSum := float64(writers * (perWriter / 10) * 45)
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum() = %v, want %v", got, wantSum)
	}
	// Bucket exactness: values 0..9 against bounds {1,2,4,8} land as
	// 0,1 -> b0; 2 -> b1; 3,4 -> b2; 5..8 -> b3; 9 -> +Inf.
	per := uint64(writers * perWriter / 10)
	wantBuckets := []uint64{2 * per, per, 2 * per, 4 * per, per}
	var acc uint64
	for i, want := range wantBuckets {
		got := h.BucketCount(i)
		if got != want {
			t.Errorf("BucketCount(%d) = %d, want %d", i, got, want)
		}
		acc += got
	}
	if acc != total {
		t.Errorf("bucket counts sum to %d, want %d", acc, total)
	}
	// Every bucket saw exemplared observations, so every bucket must carry
	// one, and it must name a trace that actually landed there.
	for i := range wantBuckets {
		trace, v, ok := h.Exemplar(i)
		if !ok || trace == 0 {
			t.Errorf("bucket %d: no exemplar", i)
			continue
		}
		j := 0
		for j < len(bounds) && v > bounds[j] {
			j++
		}
		if j != i {
			t.Errorf("bucket %d exemplar value %v belongs in bucket %d", i, v, j)
		}
	}
}

func TestGaugeAddExactUnderHammer(t *testing.T) {
	g := &Gauge{}
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				g.Add(1)
				g.Add(-0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(writers*perWriter)*0.5; got != want {
		t.Fatalf("Gauge.Value() = %v, want %v", got, want)
	}
}

// Concurrent Vec.With on a mix of fresh and interned label sets must neither
// lose children (COW insert races) nor miscount: per-label totals stay exact
// and the lock-free lookup always lands on the same child the insert
// published.
func TestVecCOWExactUnderHammer(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("sb_test_hammer_total", "hammer", "route")
	hv := r.HistogramVec("sb_test_hammer_seconds", "hammer", []float64{1}, "route")
	const writers, perWriter, routes = 16, 4000, 7
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				route := fmt.Sprintf("r%d", (w+i)%routes)
				cv.With(route).Inc()
				hv.With(route).Observe(1)
			}
		}(w)
	}
	wg.Wait()
	var cTotal, hTotal uint64
	for rt := 0; rt < routes; rt++ {
		route := fmt.Sprintf("r%d", rt)
		cTotal += cv.With(route).Value()
		hTotal += hv.With(route).Count()
	}
	if want := uint64(writers * perWriter); cTotal != want || hTotal != want {
		t.Fatalf("vec totals counter=%d hist=%d, want %d each", cTotal, hTotal, want)
	}
}

// Gather must agree exactly with the live accessors — the same lazy lane
// aggregation, one layer up — and scraping concurrently with writers must
// never yield an impossible snapshot (count below a previously seen value).
func TestGatherConsistentWhileHammered(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sb_test_gather_total", "g")
	h := r.Histogram("sb_test_gather_seconds", "g", []float64{1, 2})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(1.5)
				}
			}
		}()
	}
	var lastCount uint64
	for i := 0; i < 200; i++ {
		for _, fam := range r.Gather() {
			switch fam.Name {
			case "sb_test_gather_seconds":
				p := fam.Points[0]
				if p.Count < lastCount {
					t.Fatalf("histogram count went backwards: %d after %d", p.Count, lastCount)
				}
				lastCount = p.Count
				// Bucket/count skew while writers run is unbounded on a
				// preemptible scheduler (the gatherer can stall between lane
				// reads); exactness is asserted after quiescence below.
			}
		}
	}
	close(stop)
	wg.Wait()
	// Quiescent: Gather and accessors must agree exactly.
	for _, fam := range r.Gather() {
		switch fam.Name {
		case "sb_test_gather_total":
			if got := uint64(fam.Points[0].Value); got != c.Value() {
				t.Errorf("gathered counter %d != live %d", got, c.Value())
			}
		case "sb_test_gather_seconds":
			p := fam.Points[0]
			if p.Count != h.Count() {
				t.Errorf("gathered count %d != live %d", p.Count, h.Count())
			}
			if p.Sum != h.Sum() {
				t.Errorf("gathered sum %v != live %v", p.Sum, h.Sum())
			}
			var acc uint64
			for _, b := range p.Buckets {
				acc += b
			}
			if acc != p.Count {
				t.Errorf("quiescent bucket sum %d != count %d", acc, p.Count)
			}
		}
	}
}
