// Package obs is Switchboard's dependency-free observability subsystem: a
// concurrent metrics registry (counters, gauges, fixed-bucket histograms)
// rendered in Prometheus text exposition format, a bounded ring buffer that
// records every placement/migration/failover decision the realtime
// controller takes, and HTTP middleware for per-route request telemetry.
//
// Switchboard's value proposition is quantitative — provisioning cost, ACL,
// migration rates — so the running service must expose the same quantities
// continuously. The paper's controller (§6.6) lives against fleet telemetry;
// this package is that substrate for the reproduction, and the baseline every
// future performance PR reports against.
//
// Design rules:
//
//   - Zero allocation and no locks on the hot paths: Counter.Inc,
//     Counter.Add, Gauge.Set, and Histogram.Observe never allocate and never
//     take a lock. Counters and histograms are striped across cache-line-
//     padded per-goroutine lanes, so concurrent writers never contend on a
//     line; scrapes aggregate the lanes lazily. Vec.With on an already-
//     interned label set is lock-free (an atomic load of a copy-on-write
//     map); hot callers still cache the child at wire-up time.
//   - Nil-safe sinks: every sink method (Inc/Add/Observe/Set) is a no-op on
//     a nil receiver, so instrumented code never guards with `if m != nil`.
//     Construction decides whether telemetry is on; call sites stay branch-
//     free and unconditional.
//   - Naming scheme: sb_<subsystem>_<quantity>[_<unit>][_total], e.g.
//     sb_controller_calls_started_total, sb_kvstore_client_cmd_seconds.
//     Counters end in _total; durations are histograms in seconds.
//
// The package is stdlib-only and imports nothing from the rest of the
// module, so every layer (controller, kvstore, faults, httpapi, sim, eval)
// can depend on it without cycles.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricKind discriminates families for exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing uint64, striped across
// cache-line-padded lanes so concurrent writers on different CPUs never
// contend on one line. Writes touch a single lane; Value sums the lanes
// lazily — the scrape pays for aggregation, not the hot path. The zero value
// is usable; all methods are safe for concurrent use and no-ops on a nil
// receiver.
type Counter struct {
	cells [numStripes]stripedCell
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.cells[stripeIdx()].n.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.cells[stripeIdx()].n.Add(n)
	}
}

// Value returns the current count (0 on nil), summing the stripes. Each lane
// is monotonic, so concurrent writes can only make the result a valid earlier
// total, never an invalid one.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var v uint64
	for i := range c.cells {
		v += c.cells[i].n.Load()
	}
	return v
}

// Gauge is a float64 that can go up and down, stored as IEEE-754 bits in a
// uint64 so Set is one atomic store. Nil-safe like Counter.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (CAS loop; rarely contended).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed, cumulative-rendered buckets.
// Bounds are immutable after construction. Observe is lock-free and striped:
// each writer lane owns a cache-line-aligned block of bucket counters plus
// its own total and running-sum cells, so concurrent observers never share a
// line; scrape-side readers sum the lanes lazily. Each bucket can also carry
// one exemplar — the trace ID and value of the last exemplared observation to
// land in it — linking a fleet scrape back into sbtrace.
type Histogram struct {
	bounds []float64 // immutable upper bounds, ascending
	// cells is numStripes lanes of stride cells each. Within a lane:
	// [0..len(bounds)] bucket counts (last is +Inf), then the lane's
	// observation total, then its running sum as float64 bits. stride is
	// rounded to a cache-line multiple so lanes never share a line.
	cells     []atomic.Uint64
	stride    int
	exemplars []exemplarCell // len(bounds)+1, shared across lanes
}

// exemplarCell holds one bucket's exemplar: the trace ID (0 = none) and the
// float64 bits of the observed value. The two stores are not paired
// atomically; exemplars are best-effort breadcrumbs, and a torn pair still
// names a real trace in the right bucket.
type exemplarCell struct {
	trace atomic.Uint64
	vbits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.observe(v, 0) }

// ObserveExemplar records one sample and, when traceID is nonzero, stamps it
// as the bucket's exemplar so scrapes can link the bucket to a trace.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) { h.observe(v, traceID) }

func (h *Histogram) observe(v float64, traceID uint64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤20) and typically hit early,
	// which beats binary search's branch misses at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	base := stripeIdx() * h.stride
	h.cells[base+i].Add(1)
	h.cells[base+len(h.bounds)+1].Add(1)
	sum := &h.cells[base+len(h.bounds)+2]
	for {
		old := sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if sum.CompareAndSwap(old, next) {
			break
		}
	}
	if traceID != 0 {
		e := &h.exemplars[i]
		e.vbits.Store(math.Float64bits(v))
		e.trace.Store(traceID)
	}
}

// BucketCount returns the (non-cumulative) count of bucket i, where
// i == len(Bounds()) is the +Inf bucket. 0 on nil or out of range.
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil || i < 0 || i > len(h.bounds) {
		return 0
	}
	var n uint64
	for s := 0; s < numStripes; s++ {
		n += h.cells[s*h.stride+i].Load()
	}
	return n
}

// Bounds returns the bucket upper bounds (the +Inf bucket is implicit). The
// slice must not be modified. Nil on nil.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Exemplar returns bucket i's exemplar trace ID and observed value; ok is
// false when the bucket never received an exemplared observation.
func (h *Histogram) Exemplar(i int) (traceID uint64, value float64, ok bool) {
	if h == nil || i < 0 || i > len(h.bounds) {
		return 0, 0, false
	}
	e := &h.exemplars[i]
	t := e.trace.Load()
	if t == 0 {
		return 0, 0, false
	}
	return t, math.Float64frombits(e.vbits.Load()), true
}

// Count returns the number of observations (0 on nil), summing the lanes.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	off := len(h.bounds) + 1
	var n uint64
	for s := 0; s < numStripes; s++ {
		n += h.cells[s*h.stride+off].Load()
	}
	return n
}

// Sum returns the sum of observed values (0 on nil), summing the lanes.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	off := len(h.bounds) + 2
	var v float64
	for s := 0; s < numStripes; s++ {
		v += math.Float64frombits(h.cells[s*h.stride+off].Load())
	}
	return v
}

// CountLE returns how many observations were ≤ bound, using the buckets with
// an upper bound ≤ bound (the histogram's resolution; pick an SLO threshold
// that is an exact bucket bound for an exact answer). 0 on nil.
func (h *Histogram) CountLE(bound float64) uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i, b := range h.bounds {
		if b > bound {
			break
		}
		n += h.BucketCount(i)
	}
	return n
}

// LatencyBuckets are the default duration buckets in seconds: 100 µs to 10 s
// in a 1-2.5-5 progression. The low end matches the in-process kvstore
// round-trip (~100 µs on loopback); the paper's Azure Redis writes land in
// 0.3–4.2 ms, i.e. the middle of the range; the top end catches deadline-
// bounded stalls (the client's default IOTimeout is 5 s).
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// family is one registered metric name with its samples.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string // for vecs; nil for plain metrics

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	// kids is the vec child map, copy-on-write: readers Load the current map
	// and index it with no lock — the lock-free fast path for already-
	// interned label sets. Writers (first observation of a new label set)
	// serialize on mu, copy the map, insert, and Store the copy.
	kids atomic.Pointer[map[string]*child]
	mu   sync.Mutex // serializes kids copy-on-write updates
}

// child is one labeled sample of a vec family.
type child struct {
	labelVals []string
	counter   *Counter
	hist      *Histogram
	gauge     *Gauge
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry. A nil *Registry is a valid "telemetry off"
// registry: every constructor returns a nil metric whose sink methods are
// no-ops, so wiring code can pass nil straight through.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
	order    []string           // guarded by mu; registration order (render sorts)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register adds a family, panicking on duplicate names with a different
// shape — a wiring bug worth failing loudly on at startup, matching how
// Prometheus client libraries treat duplicate registration.
func (r *Registry) register(name, help string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or fetches) a plain counter. Nil-safe: a nil registry
// returns a nil counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindCounter, nil)
	if f.counter == nil {
		f.counter = &Counter{}
	}
	return f.counter
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindGauge, nil)
	if f.gauge == nil {
		f.gauge = &Gauge{}
	}
	return f.gauge
}

// Histogram registers (or fetches) a histogram with the given ascending
// bucket upper bounds (a final +Inf bucket is implicit). A nil or empty
// bounds slice uses LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindHistogram, nil)
	if f.hist == nil {
		f.hist = newHistogram(bounds)
	}
	return f.hist
}

// newHistogram allocates the striped lane arrays once per registered series.
//
//sblint:allowalloc(registration-time only; Observe on the hot path touches preallocated counters)
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	// Per lane: len(b)+1 buckets, a total cell, and a sum cell — rounded up
	// to a whole number of 64-byte cache lines so lanes never false-share.
	stride := (len(b) + 3 + 7) &^ 7
	return &Histogram{
		bounds:    b,
		stride:    stride,
		cells:     make([]atomic.Uint64, numStripes*stride),
		exemplars: make([]exemplarCell, len(b)+1),
	}
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	f *family
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels)}
}

// With returns the child counter for the given label values, creating it on
// first use. The lookup takes a read lock and allocates only on a miss; hot
// paths should cache the returned child. Nil-safe.
func (v *CounterVec) With(labelVals ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.childFor(labelVals).counter
}

// HistogramVec is a histogram family partitioned by label values. All
// children share the same bucket bounds.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label")
	}
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels), bounds: b}
}

// With returns the child histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(labelVals ...string) *Histogram {
	if v == nil {
		return nil
	}
	c := v.f.childForHist(labelVals, v.bounds)
	return c.hist
}

// GaugeVec is a gauge family partitioned by label values (e.g. an SLO burn
// rate by window).
type GaugeVec struct {
	f *family
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label")
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels)}
}

// With returns the child gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(labelVals ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.childForGauge(labelVals).gauge
}

// labelKey joins label values with a separator no sane label contains.
func labelKey(vals []string) string {
	if len(vals) == 1 {
		return vals[0]
	}
	return strings.Join(vals, "\x1f") //sblint:allowalloc(multi-label join; every hot-path series uses a single label and takes the branch above)
}

// lookup is the lock-free fast path: one atomic pointer load plus one map
// read against an immutable map.
func (f *family) lookup(key string) (*child, bool) {
	if m := f.kids.Load(); m != nil {
		c, ok := (*m)[key]
		return c, ok
	}
	return nil, false
}

// insert is the copy-on-write slow path, taken once per new label set: copy
// the current map, add the child, publish the copy. Existing readers keep
// their (still valid, still immutable) old map.
//
//sblint:allowalloc(series creation; the interned fast path in lookup never reaches here)
func (f *family) insert(key string, vals []string, build func(*child)) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.kids.Load()
	if old != nil {
		if c, ok := (*old)[key]; ok {
			return c
		}
	}
	next := make(map[string]*child, 1)
	if old != nil {
		next = make(map[string]*child, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
	}
	c := &child{labelVals: append([]string(nil), vals...)}
	build(c)
	next[key] = c
	f.kids.Store(&next)
	return c
}

func (f *family) childFor(vals []string) *child {
	key := labelKey(vals)
	if c, ok := f.lookup(key); ok {
		return c
	}
	return f.insert(key, vals, func(c *child) { c.counter = &Counter{} })
}

func (f *family) childForGauge(vals []string) *child {
	key := labelKey(vals)
	if c, ok := f.lookup(key); ok {
		return c
	}
	return f.insert(key, vals, func(c *child) { c.gauge = &Gauge{} })
}

func (f *family) childForHist(vals []string, bounds []float64) *child {
	key := labelKey(vals)
	if c, ok := f.lookup(key); ok {
		return c
	}
	return f.insert(key, vals, func(c *child) { c.hist = newHistogram(bounds) }) //sblint:allowalloc(series creation; the interned fast path returned above)
}
