package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Three harvest cycles with Keep=2 must leave exactly two cpu and two heap
// snapshots, and every file must be a complete, non-empty profile.
func TestProfilerRotationBounded(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfileConfig{
		Dir:         dir,
		Interval:    time.Second,
		CPUDuration: 20 * time.Millisecond,
		Keep:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.Harvest(); err != nil {
			t.Fatalf("harvest %d: %v", i, err)
		}
	}
	for _, pat := range []string{"cpu-*.pprof", "heap-*.pprof"} {
		got, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("%s: %d files %v, want 2 (bounded rotation)", pat, len(got), got)
		}
		for _, f := range got {
			st, err := os.Stat(f)
			if err != nil {
				t.Fatal(err)
			}
			if st.Size() == 0 {
				t.Errorf("%s is empty", f)
			}
		}
	}
	// No temp files may linger after successful harvests.
	if leftover, _ := filepath.Glob(filepath.Join(dir, "*.tmp*")); len(leftover) != 0 {
		t.Errorf("temp files left behind: %v", leftover)
	}
}

func TestProfilerRequiresDir(t *testing.T) {
	if _, err := NewProfiler(ProfileConfig{}); err == nil {
		t.Fatal("want error for empty dir")
	}
}
