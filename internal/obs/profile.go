package obs

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"
)

// Profiler defaults; see ProfileConfig.
const (
	DefaultProfileInterval    = time.Minute
	DefaultProfileCPUDuration = 10 * time.Second
	DefaultProfileKeep        = 8
)

// ProfileConfig configures a Profiler. Only Dir is required.
type ProfileConfig struct {
	// Dir receives the snapshot files. Created if missing.
	Dir string
	// Interval is how often a harvest cycle runs (default one minute).
	Interval time.Duration
	// CPUDuration is how long each cycle samples the CPU profile (default
	// ten seconds; clamped to half the interval so cycles never overlap).
	CPUDuration time.Duration
	// Keep bounds how many snapshots of each kind stay on disk (default 8).
	// Names rotate through cpu-0.pprof..cpu-<Keep-1>.pprof (and heap-*), so
	// disk use is fixed no matter how long the process runs.
	Keep   int
	Logger *slog.Logger
}

// Profiler periodically harvests CPU and heap profiles into a directory — the
// always-on, post-hoc answer to "what was it doing an hour ago?" without an
// operator attached to /debug/pprof at the time. Snapshots are written to a
// temp file and renamed into place, so a reader never sees a torn profile.
//
// The harvester is off by default: it only exists when the operator passes
// switchboard -profile-dir. Overhead while on is the pprof sampler's (~1% CPU
// during the sampling window) plus one forced GC per heap snapshot.
type Profiler struct {
	cfg  ProfileConfig
	seq  int
	stop chan struct{}
	done chan struct{}
}

// NewProfiler validates cfg, creates the directory, and returns a harvester
// ready to Run.
func NewProfiler(cfg ProfileConfig) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("profile dir required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultProfileInterval
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = DefaultProfileCPUDuration
	}
	if cfg.CPUDuration > cfg.Interval/2 {
		cfg.CPUDuration = cfg.Interval / 2
	}
	if cfg.Keep <= 0 {
		cfg.Keep = DefaultProfileKeep
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile dir: %w", err)
	}
	return &Profiler{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}, nil
}

// Run harvests until Stop, one cycle per interval. Call in a goroutine.
func (p *Profiler) Run() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			if err := p.Harvest(); err != nil {
				p.cfg.Logger.Warn("profile harvest", "err", err)
			}
		}
	}
}

// Stop ends the harvest loop and waits for an in-flight cycle to finish.
func (p *Profiler) Stop() {
	close(p.stop)
	<-p.done
}

// Harvest runs one cycle: a CPUDuration CPU profile, then a heap snapshot,
// both into the rotation slot seq % Keep.
func (p *Profiler) Harvest() error {
	slot := p.seq % p.cfg.Keep
	p.seq++
	if err := p.harvestCPU(slot); err != nil {
		return err
	}
	return p.harvestHeap(slot)
}

func (p *Profiler) harvestCPU(slot int) error {
	return p.write(fmt.Sprintf("cpu-%d.pprof", slot), func(f *os.File) error {
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		// An early Stop cuts the sampling window short but still writes a
		// valid (small) profile.
		select {
		case <-time.After(p.cfg.CPUDuration):
		case <-p.stop:
		}
		pprof.StopCPUProfile()
		return nil
	})
}

func (p *Profiler) harvestHeap(slot int) error {
	return p.write(fmt.Sprintf("heap-%d.pprof", slot), func(f *os.File) error {
		// Up-to-date heap stats need a completed GC; one per minute is noise.
		runtime.GC()
		return pprof.Lookup("heap").WriteTo(f, 0)
	})
}

// write streams one profile into name via a temp file + rename, so readers
// only ever see complete snapshots.
func (p *Profiler) write(name string, fill func(*os.File) error) error {
	final := filepath.Join(p.cfg.Dir, name)
	f, err := os.CreateTemp(p.cfg.Dir, name+".tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := fill(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, final)
}
