package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"switchboard/internal/obs/span"
	"testing"
)

func TestDecisionRingOverwritesOldest(t *testing.T) {
	r := NewDecisionRing(3)
	for i := uint64(1); i <= 5; i++ {
		r.Record(Decision{Call: i, Kind: "start"})
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	snap := r.Snapshot(0)
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	// Newest first: calls 5, 4, 3 with sequence numbers stamped.
	for i, wantCall := range []uint64{5, 4, 3} {
		if snap[i].Call != wantCall || snap[i].Seq != wantCall {
			t.Errorf("snap[%d] = call %d seq %d, want %d", i, snap[i].Call, snap[i].Seq, wantCall)
		}
	}
	if got := r.Snapshot(2); len(got) != 2 || got[0].Call != 5 || got[1].Call != 4 {
		t.Errorf("Snapshot(2) = %v", got)
	}
	// Asking for more than stored returns what exists.
	if got := r.Snapshot(99); len(got) != 3 {
		t.Errorf("Snapshot(99) len = %d, want 3", len(got))
	}
}

func TestDecisionRingHandler(t *testing.T) {
	r := NewDecisionRing(8)
	r.Record(Decision{Call: 1, Kind: "start", Chosen: 4, Prev: -1, Reason: "first-joiner"})
	r.Record(Decision{Call: 1, Kind: "freeze", Chosen: 2, Prev: 4, Migrated: true, Planned: true, Reason: "plan", Config: "video|ID:5,JP:3"})

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var out struct {
		Total     uint64     `json:"total"`
		Decisions []Decision `json:"decisions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 2 || len(out.Decisions) != 2 {
		t.Fatalf("total=%d len=%d, want 2/2", out.Total, len(out.Decisions))
	}
	if d := out.Decisions[0]; d.Kind != "freeze" || !d.Migrated || d.Config == "" {
		t.Errorf("newest decision = %+v", d)
	}

	// ?n=1 limits, ?n=junk is a 400.
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?n=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || len(out.Decisions) != 1 {
		t.Errorf("n=1: %v, %d decisions", err, len(out.Decisions))
	}
	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?n=-1", nil))
	if rec.Code != 400 {
		t.Errorf("n=-1 status = %d, want 400", rec.Code)
	}
}

func TestDebugMuxRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("sb_test_total", "t").Inc()
	ring := NewDecisionRing(4)
	ring.Record(Decision{Call: 7, Kind: "start"})
	spans := span.NewRing(8)
	spans.ExportSpan(span.Record{Trace: 0xabc, Span: 1, Name: "http /v1/call/start"})
	mux := DebugMux(reg, ring, spans)

	for path, wantBody := range map[string]string{
		"/metrics":               "sb_test_total 1",
		"/debug/trace":           `"call":7`,
		"/debug/spans":           `"http /v1/call/start"`,
		"/debug/pprof/":          "profiles",
		"/debug/pprof/goroutine": "goroutine",
	} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", path, nil)
		if path == "/debug/pprof/goroutine" {
			req = httptest.NewRequest("GET", path+"?debug=1", nil)
		}
		mux.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Errorf("%s status = %d", path, rec.Code)
			continue
		}
		if body := rec.Body.String(); !strings.Contains(body, wantBody) {
			t.Errorf("%s body missing %q", path, wantBody)
		}
	}

	// Nil registry/ring still serve empty output, not 404s.
	nilMux := DebugMux(nil, nil, nil)
	for _, path := range []string{"/metrics", "/debug/trace", "/debug/spans"} {
		rec := httptest.NewRecorder()
		nilMux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("nil %s status = %d", path, rec.Code)
		}
	}
}
