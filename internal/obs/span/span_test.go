package span

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestIDStringParseRoundTrip(t *testing.T) {
	for _, id := range []ID{0, 1, 0xdeadbeef, 0x9e3779b97f4a7c15, ^ID(0)} {
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("ID %d rendered %q: want 16 hex digits", uint64(id), s)
		}
		back, err := ParseID(s)
		if err != nil || back != id {
			t.Fatalf("ParseID(%q) = %v, %v; want %v", s, back, err, id)
		}
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestIDJSONRoundTrip(t *testing.T) {
	id := ID(0xabc123)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"0000000000abc123"` {
		t.Fatalf("marshal = %s", b)
	}
	var back ID
	if err := json.Unmarshal(b, &back); err != nil || back != id {
		t.Fatalf("unmarshal = %v, %v", back, err)
	}
}

func TestTracerDeterministicIDs(t *testing.T) {
	a, b := NewTracer(7), NewTracer(7)
	for i := 0; i < 10; i++ {
		if x, y := a.nextID(), b.nextID(); x != y {
			t.Fatalf("step %d: same seed diverged: %v vs %v", i, x, y)
		}
	}
	if NewTracer(1).nextID() == NewTracer(2).nextID() {
		t.Fatal("different seeds produced the same first ID")
	}
}

func TestSpanLifecycleAndSinks(t *testing.T) {
	ring := NewRing(8)
	tr := NewTracer(1, ring, nil) // nil sink must be skipped, not crash
	ctx, root := tr.Start(context.Background(), "root")
	if root == nil || FromContext(ctx) != root {
		t.Fatal("Start did not install the span in the context")
	}
	cctx, child := Child(ctx, "child")
	if child == nil || FromContext(cctx) != child {
		t.Fatal("Child did not install the child span")
	}
	if child.rec.Trace != root.rec.Trace || child.rec.Parent != root.rec.Span {
		t.Fatalf("child lineage wrong: %+v vs root %+v", child.rec, root.rec)
	}
	child.SetAttr("k", "v")
	child.SetError(errors.New("boom"))
	child.End()
	root.SetStatus("ok-ish")
	root.End()

	recs := ring.Snapshot(0)
	if len(recs) != 2 {
		t.Fatalf("ring holds %d spans, want 2", len(recs))
	}
	// Snapshot is newest-first: root ended last.
	if recs[0].Name != "root" || recs[0].Status != "ok-ish" {
		t.Fatalf("newest = %+v", recs[0])
	}
	c := recs[1]
	if c.Status != "error" || c.Attrs.Get("k") != "v" || c.Attrs.Get("error") != "boom" {
		t.Fatalf("child record = %+v", c)
	}
	got := ring.Trace(root.rec.Trace)
	if len(got) != 2 || got[len(got)-1].Name != "root" {
		t.Fatalf("Trace() = %+v, want child then root", got)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "x")
	if sp != nil || ctx != context.Background() {
		t.Fatal("nil tracer must return ctx unchanged and a nil span")
	}
	// Every method on a nil span is a no-op.
	sp.SetAttr("k", "v")
	sp.SetStatus("s")
	sp.SetError(errors.New("e"))
	sp.End()
	if sp.TraceID() != 0 || sp.SpanID() != 0 || sp.NewChild("c") != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	cctx, child := Child(ctx, "child")
	if child != nil || cctx != ctx {
		t.Fatal("Child without a parent must return ctx unchanged and nil")
	}
	if id, ok := ContextTraceID(ctx); ok || id != 0 {
		t.Fatal("ContextTraceID on a bare context must report absent")
	}
	var ring *Ring
	ring.ExportSpan(Record{})
	if ring.Snapshot(0) != nil || ring.Trace(1) != nil || ring.Total() != 0 {
		t.Fatal("nil ring accessors must return zero values")
	}
	var exp *JSONLExporter
	exp.ExportSpan(Record{})
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTracingOffZeroAllocs(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		cctx, sp := Child(ctx, "hot")
		sp.SetAttr("k", "v")
		sp.End()
		_, _ = ContextTraceID(cctx)
	}); n != 0 {
		t.Fatalf("tracing-off hot path allocated %.0f/op, want 0", n)
	}
}

func TestRingOverwrite(t *testing.T) {
	ring := NewRing(4)
	for i := 1; i <= 6; i++ {
		ring.ExportSpan(Record{Trace: ID(i), Span: ID(i), Name: "s"})
	}
	if ring.Total() != 6 {
		t.Fatalf("Total = %d, want 6", ring.Total())
	}
	recs := ring.Snapshot(0)
	if len(recs) != 4 || recs[0].Trace != 6 || recs[3].Trace != 3 {
		t.Fatalf("after wrap Snapshot = %+v", recs)
	}
	if got := ring.Snapshot(2); len(got) != 2 || got[0].Trace != 6 || got[1].Trace != 5 {
		t.Fatalf("Snapshot(2) = %+v", got)
	}
	if got := ring.Trace(2); len(got) != 0 {
		t.Fatalf("overwritten trace still visible: %+v", got)
	}
}

func TestParseLimit(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"", 0, true}, {"0", 0, true}, {"5", 5, true}, {"10000", 10000, true},
		{"-1", 0, false}, {"abc", 0, false}, {"1.5", 0, false},
		{"99999999999999999999", 0, false},
	} {
		got, err := ParseLimit(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseLimit(%q) = %d, %v; want %d, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestRingHandler(t *testing.T) {
	ring := NewRing(8)
	tr := NewTracer(3, ring)
	ctx, root := tr.Start(context.Background(), "root")
	_, child := Child(ctx, "child")
	child.End()
	root.End()

	get := func(url string) (*httptest.ResponseRecorder, map[string]any) {
		rr := httptest.NewRecorder()
		ring.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, url, nil))
		var body map[string]any
		if rr.Code == http.StatusOK {
			if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
				t.Fatalf("%s: bad JSON: %v", url, err)
			}
		}
		return rr, body
	}

	rr, body := get("/debug/spans?n=1")
	if rr.Code != http.StatusOK || len(body["spans"].([]any)) != 1 {
		t.Fatalf("n=1: code %d body %v", rr.Code, body)
	}
	rr, body = get("/debug/spans")
	if rr.Code != http.StatusOK || len(body["spans"].([]any)) != 2 || body["total"].(float64) != 2 {
		t.Fatalf("all: code %d body %v", rr.Code, body)
	}
	rr, body = get("/debug/spans?trace=" + root.TraceID().String())
	if rr.Code != http.StatusOK || len(body["spans"].([]any)) != 2 {
		t.Fatalf("trace: code %d body %v", rr.Code, body)
	}
	for _, bad := range []string{"/debug/spans?n=-1", "/debug/spans?n=x", "/debug/spans?trace=zz"} {
		if rr, _ := get(bad); rr.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", bad, rr.Code)
		}
	}
	if rr, body := get("/debug/spans?trace=ffffffffffffffff"); rr.Code != http.StatusOK || body["spans"] != nil {
		t.Errorf("unknown trace: code %d body %v, want empty 200", rr.Code, body)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	exp := NewJSONLExporter(&buf)
	start := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	want := []Record{
		{Trace: 1, Span: 2, Name: "root", Start: start, Duration: 5 * time.Millisecond},
		{Trace: 1, Span: 3, Parent: 2, Name: "kv.SET", Start: start, Duration: time.Millisecond,
			Status: "error", Attrs: Attrs{{"retry", "true"}}},
	}
	for _, r := range want {
		exp.ExportSpan(r)
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Start.Equal(want[i].Start) {
			t.Fatalf("record %d start = %v, want %v", i, got[i].Start, want[i].Start)
		}
		got[i].Start = want[i].Start // Equal but different wall-clock repr.
		g, _ := json.Marshal(got[i])
		w, _ := json.Marshal(want[i])
		if string(g) != string(w) {
			t.Fatalf("record %d = %s, want %s", i, g, w)
		}
	}
	if _, err := ReadRecords(strings.NewReader("{bad json")); err == nil {
		t.Fatal("ReadRecords accepted a malformed line")
	}
}

func TestLogHandlerStampsTraceID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(slog.NewTextHandler(&buf, nil)))
	tr := NewTracer(5, nil)
	ctx, sp := tr.Start(context.Background(), "op")
	logger.InfoContext(ctx, "inside")
	logger.InfoContext(context.Background(), "outside")
	sp.End()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], "trace_id="+sp.TraceID().String()) ||
		!strings.Contains(lines[0], "span_id="+sp.SpanID().String()) {
		t.Fatalf("span-context line missing IDs: %s", lines[0])
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Fatalf("bare-context line gained a trace_id: %s", lines[1])
	}
}

func TestWrapHTTP(t *testing.T) {
	ring := NewRing(8)
	tr := NewTracer(9, ring)
	var sawSpan bool
	h := tr.WrapHTTP("/v1/test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawSpan = FromContext(r.Context()) != nil
		w.WriteHeader(http.StatusBadGateway)
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/test", nil))
	if !sawSpan {
		t.Fatal("handler did not see the request span")
	}
	recs := ring.Snapshot(0)
	if len(recs) != 1 {
		t.Fatalf("ring holds %d spans, want 1", len(recs))
	}
	r := recs[0]
	if r.Name != "http /v1/test" || r.Attrs.Get("http.status") != "502" || r.Status != "error" {
		t.Fatalf("request span = %+v", r)
	}
	// Nil tracer: handler passes through untouched.
	var off *Tracer
	plain := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := off.WrapHTTP("/x", plain); got == nil {
		t.Fatal("nil tracer WrapHTTP returned nil")
	}
}
