package span

import (
	"net/http"
	"strconv"
)

// WrapHTTP wraps h so each request runs under a fresh root span named after
// the route, with the request context carrying the span for everything
// downstream (controller, kvstore). The final HTTP status lands in the
// http.status attr; 5xx marks the span errored. A nil tracer returns h
// unchanged, so wiring is unconditional.
func (t *Tracer) WrapHTTP(route string, h http.Handler) http.Handler {
	if t == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ctx, sp := t.Start(req.Context(), "http "+route)
		sw := &spanWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, req.WithContext(ctx))
		sp.SetAttr("http.status", strconv.Itoa(sw.code))
		if sw.code >= 500 {
			sp.SetStatus("error")
		}
		sp.End()
	})
}

// spanWriter captures the status code written by the handler.
type spanWriter struct {
	http.ResponseWriter
	code int
}

func (w *spanWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}
