// Package span is Switchboard's request-scoped tracing substrate: 64-bit
// trace/span IDs propagated through context.Context, so one placement's
// journey — HTTP edge, controller decision, persist, kvstore wire — is
// reconstructable as a single trace. It complements internal/obs: metrics
// answer "how many / how slow in aggregate", the decision ring answers "what
// did the controller choose", and spans answer "where did *this* call's time
// go".
//
// Design rules, mirroring internal/obs:
//
//   - Nil-safe everywhere: a nil *Tracer starts no spans, a nil *Span
//     swallows every method. "Tracing off" is a nil tracer and costs zero
//     allocations on the hot path — instrumented code never branches on a
//     config flag, it just calls Child/End unconditionally.
//   - Spans flow via context.Context. Creating a child requires only the
//     context (the parent carries its tracer), so packages deep in the call
//     tree (kvstore) need no tracer wiring of their own.
//   - Stdlib-only, and imported by internal/obs (not the reverse), so every
//     layer can depend on it without cycles.
//
// ID format: trace and span IDs are 64-bit values rendered as 16 hex digits.
// Generation is deterministic per tracer (a seeded splitmix64 sequence), so
// tests replay byte-identical traces. On the kvstore wire the trace ID
// travels as a `TRACEID <hex>` argument pair prefixed to the RESP command
// (see internal/kvstore); in logs it appears as the `trace_id` attribute
// (see LogHandler).
package span

import (
	"context"
	"encoding/json"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
	"unsafe"
)

// ID is a 64-bit trace or span identifier, rendered as 16 hex digits.
type ID uint64

// String renders the ID in the canonical zero-padded hex form.
func (id ID) String() string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:]) //sblint:allowalloc(renders an ID for export or wire prefixing; only runs when tracing is active)
}

// ParseID parses the canonical hex form (as produced by String; leading
// zeros optional).
func ParseID(s string) (ID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	return ID(v), err
}

// MarshalJSON renders the ID as a hex string.
func (id ID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON accepts the hex string form.
func (id *ID) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	v, err := ParseID(s)
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Attrs is a span's annotation list, marshalled as a JSON object (insertion
// order is preserved in memory; JSON object keys lose it, which is fine for
// the consumers — sbtrace and humans).
type Attrs []Attr

// MarshalJSON renders the list as {"k":"v",...}.
func (a Attrs) MarshalJSON() ([]byte, error) {
	out := []byte{'{'}
	for i, kv := range a {
		if i > 0 {
			out = append(out, ',')
		}
		out = strconv.AppendQuote(out, kv.Key)
		out = append(out, ':')
		out = strconv.AppendQuote(out, kv.Value)
	}
	return append(out, '}'), nil
}

// UnmarshalJSON accepts the object form. Decoded attrs come back sorted by
// key (JSON objects do not preserve insertion order).
func (a *Attrs) UnmarshalJSON(b []byte) error {
	m := map[string]string{}
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	out := (*a)[:0]
	for k, v := range m {
		out = append(out, Attr{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	*a = out
	return nil
}

// Get returns the value for key ("" when absent).
func (a Attrs) Get(key string) string {
	for _, kv := range a {
		if kv.Key == key {
			return kv.Value
		}
	}
	return ""
}

// Record is one finished span — the unit every sink receives and the JSONL
// schema cmd/sbtrace reads. Duration marshals as integer nanoseconds.
type Record struct {
	Trace    ID            `json:"trace"`
	Span     ID            `json:"span"`
	Parent   ID            `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"dur_ns"`
	// Status is "" while healthy, "error" after SetError/SetStatus.
	Status string `json:"status,omitempty"`
	Attrs  Attrs  `json:"attrs,omitempty"`
}

// End returns the span's end time.
func (r Record) End() time.Time { return r.Start.Add(r.Duration) }

// Sink receives finished spans. Implementations must be safe for concurrent
// use; ExportSpan is fire-and-forget by contract (telemetry failure is not an
// error the traced code can act on).
type Sink interface {
	ExportSpan(Record)
}

// Tracer creates root spans and generates IDs. A nil Tracer is "tracing
// off": Start returns the context unchanged and a nil span.
type Tracer struct {
	state atomic.Uint64 // splitmix64 counter state
	sinks []Sink
}

// NewTracer returns a tracer whose ID sequence is a pure function of seed
// and whose finished spans fan out to sinks (nil sinks are skipped).
func NewTracer(seed int64, sinks ...Sink) *Tracer {
	t := &Tracer{}
	t.state.Store(uint64(seed))
	for _, s := range sinks {
		if s != nil {
			t.sinks = append(t.sinks, s)
		}
	}
	return t
}

// nextID steps the splitmix64 sequence. The golden-gamma increment visits
// every uint64 before repeating; the output mix makes consecutive IDs look
// unrelated. Zero outputs are skipped so 0 can mean "no parent".
func (t *Tracer) nextID() ID {
	for {
		x := t.state.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return ID(x)
		}
	}
}

func (t *Tracer) export(r Record) {
	for _, s := range t.sinks {
		s.ExportSpan(r) //sblint:allowalloc(sinks are caller-supplied; export cost is the tracer owner's choice)
	}
}

// Span is one in-flight timed operation. A span is owned by the goroutine
// that started it; End publishes it to the tracer's sinks. All methods are
// no-ops on a nil receiver.
type Span struct {
	t   *Tracer
	rec Record
	// attrsBuf backs the first attrs in place, so the usual one- or
	// two-attr span (a call ID, a status) annotates without a heap grow;
	// spans are never reused after End, so exported Records may alias it.
	attrsBuf [2]Attr
	// numBuf backs SetAttrUint's digit string the same way.
	numBuf [20]byte
	// ended makes End idempotent, so a hot path can publish the span early
	// (EndWithDuration) while a deferred End stays as the error-path net.
	ended bool
}

// TraceID returns the span's trace ID (0 on nil).
func (s *Span) TraceID() ID {
	if s == nil {
		return 0
	}
	return s.rec.Trace
}

// SpanID returns the span's own ID (0 on nil).
func (s *Span) SpanID() ID {
	if s == nil {
		return 0
	}
	return s.rec.Span
}

// StartTime returns when the span started (zero on nil) — instrumented
// callers reuse it instead of reading the clock a second time.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.rec.Start
}

// SetAttr appends a key/value annotation.
func (s *Span) SetAttr(key, value string) {
	if s != nil {
		s.rec.Attrs = append(s.rec.Attrs, Attr{key, value}) //sblint:allowalloc(span annotation; reached only when tracing is active (nil spans no-op))
	}
}

// SetAttrUint appends a key with v's decimal form, encoding the digits into
// span-owned storage so the hot-path annotation (a call ID) never touches the
// heap. At most one uint attr per span — a second call would reuse the bytes
// backing the first one's value.
func (s *Span) SetAttrUint(key string, v uint64) {
	if s == nil {
		return
	}
	b := strconv.AppendUint(s.numBuf[:0], v, 10)
	// The string header aliases numBuf, which is written exactly once and
	// immutable from here on; the span outlives every Record that aliases it
	// (sinks hold the Record, the Record's attr strings hold the span).
	s.rec.Attrs = append(s.rec.Attrs, Attr{key, unsafe.String(&s.numBuf[0], len(b))}) //sblint:allowalloc(appends into the span's inline attr buffer; hot-path spans stay within its capacity)
}

// SetStatus overwrites the span status ("" means ok).
func (s *Span) SetStatus(status string) {
	if s != nil {
		s.rec.Status = status
	}
}

// SetError marks the span failed and records the error text. A nil err is a
// no-op, so call sites can pass the error unconditionally.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.rec.Status = "error"
	s.rec.Attrs = append(s.rec.Attrs, Attr{"error", err.Error()}) //sblint:allowalloc(error annotation on an active span; the error path already allocated)
}

// End stamps the duration and exports the span. End is terminal: the span
// must not be reused, and a second End is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.Duration = time.Since(s.rec.Start)
	s.t.export(s.rec)
}

// EndWithDuration publishes the span with an externally measured duration,
// for hot paths that already read the clock for a latency histogram and
// shouldn't pay for a second read. Like End it is terminal and idempotent,
// so a deferred End after it is a no-op.
func (s *Span) EndWithDuration(d time.Duration) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.rec.Duration = d
	s.t.export(s.rec)
}

// NewChild returns a child span of s without touching any context — the
// shape for loop legs (one span per kvstore attempt) where building a
// context per iteration would be waste. Nil-safe: a nil s yields nil.
func (s *Span) NewChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{t: s.t, rec: Record{ //sblint:allowalloc(one span per traced attempt; nil parents return above without allocating)
		Trace:  s.rec.Trace,
		Span:   s.t.nextID(),
		Parent: s.rec.Span,
		Name:   name,
		// Derive the start from the parent's reading plus the monotonic
		// delta: Add carries the monotonic component forward, and the
		// time.Since fast path is about half the cost of a full time.Now
		// wall read on hosts with slow clocks.
		Start: s.rec.Start.Add(time.Since(s.rec.Start)),
	}}
	c.rec.Attrs = c.attrsBuf[:0]
	return c
}

// ctxKey is the context key for the active span (zero-size, so the
// FromContext lookup never allocates).
type ctxKey struct{}

// Start begins a root span (fresh trace ID) and returns a context carrying
// it. On a nil tracer it returns ctx unchanged and a nil span.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{t: t, rec: Record{
		Trace: t.nextID(),
		Span:  t.nextID(),
		Name:  name,
		Start: time.Now(),
	}}
	s.rec.Attrs = s.attrsBuf[:0]
	return context.WithValue(ctx, ctxKey{}, s), s
}

// ContextWith returns ctx carrying s as the active span (ctx unchanged when
// s is nil). It is Child's context half, for callers that create the span
// first and only need the context on some branches.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s) //sblint:allowalloc(context wrapper exists only when a span is active)
}

// FromContext returns the active span, or nil when the context carries none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span) //sblint:allowalloc(Value is dynamic dispatch only; the zero-size key makes the lookup allocation-free)
	return s
}

// Child begins a child of the context's active span and returns a context
// carrying the child. When the context carries no span (tracing off) it
// returns ctx unchanged and nil without allocating — the zero-cost contract
// instrumented hot paths rely on.
func Child(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.NewChild(name)
	return context.WithValue(ctx, ctxKey{}, s), s //sblint:allowalloc(context wrapper exists only when a span is active; tracing-off callers returned above)
}

// ContextTraceID returns the active trace ID and whether one exists, without
// allocating. The kvstore client uses it to decide whether to prefix the
// wire command.
func ContextTraceID(ctx context.Context) (ID, bool) {
	if s := FromContext(ctx); s != nil {
		return s.rec.Trace, true
	}
	return 0, false
}
