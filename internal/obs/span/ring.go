package span

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// DefaultRingCapacity bounds the span ring when callers pass 0. Spans are an
// order of magnitude chattier than placement decisions (one trace is many
// spans), so the default is larger than the decision ring's.
const DefaultRingCapacity = 4096

// ringShardCount is the write-side fan-out of the ring. Exports round-robin
// across shards, so concurrent span Ends contend on different mutexes; reads
// (the cold /debug/spans path) merge the shards by a global sequence stamp.
const ringShardCount = 8

// Ring is a bounded buffer of finished spans — the always-on, in-memory sink
// behind GET /debug/spans. Memory is fixed regardless of traffic; once full,
// the oldest span is overwritten. Storage is sharded: each export takes one
// shard's mutex, chosen round-robin by a global sequence counter, so the ring
// never serializes the fleet's span Ends behind a single lock the way the
// original single-mutex ring did. The sequence stamp stored alongside each
// record lets Snapshot/Trace merge the shards back into exact recording
// order. Nil-safe like every sink.
type Ring struct {
	shards []ringShard
	// seq is the recording-order stamp, the round-robin shard selector, and
	// (since it counts every export) the spans-ever-recorded total.
	seq atomic.Uint64

	// scratch pools the merge buffers Snapshot and Trace use, so repeated
	// debug scrapes don't re-grow a slice per call.
	scratch sync.Pool
}

// ringShard is one lock-striped segment of the ring.
type ringShard struct {
	mu   sync.Mutex
	buf  []Record // guarded by mu; ring storage
	seqs []uint64 // guarded by mu; recording stamp per slot
	next int      // guarded by mu; index the next record writes
	size int      // guarded by mu; live entries (≤ len(buf))
}

// stampedRecord pairs a record with its recording stamp for shard merges.
type stampedRecord struct {
	rec Record
	seq uint64
}

// NewRing returns a ring holding the last capacity spans
// (DefaultRingCapacity when capacity <= 0). The capacity is exact: it is
// distributed across the shards, and round-robin placement keeps eviction
// within a shard's width of global FIFO order.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	n := ringShardCount
	if capacity < n {
		n = capacity
	}
	r := &Ring{shards: make([]ringShard, n)}
	base, extra := capacity/n, capacity%n
	for i := range r.shards {
		c := base
		if i < extra {
			c++
		}
		r.shards[i].buf = make([]Record, c)
		r.shards[i].seqs = make([]uint64, c)
	}
	r.scratch.New = func() any { s := make([]stampedRecord, 0, capacity); return &s }
	return r
}

// ExportSpan implements Sink.
func (r *Ring) ExportSpan(rec Record) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	sh := &r.shards[int(seq%uint64(len(r.shards)))]
	sh.mu.Lock()
	sh.buf[sh.next] = rec
	sh.seqs[sh.next] = seq
	sh.next = (sh.next + 1) % len(sh.buf)
	if sh.size < len(sh.buf) {
		sh.size++
	}
	sh.mu.Unlock()
}

// collect copies every buffered (record, stamp) pair into a pooled scratch
// buffer. The caller must return it via putScratch.
func (r *Ring) collect() *[]stampedRecord {
	sp := r.scratch.Get().(*[]stampedRecord)
	s := (*sp)[:0]
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for j := 1; j <= sh.size; j++ {
			k := (sh.next - j + len(sh.buf)) % len(sh.buf)
			s = append(s, stampedRecord{rec: sh.buf[k], seq: sh.seqs[k]})
		}
		sh.mu.Unlock()
	}
	*sp = s
	return sp
}

func (r *Ring) putScratch(sp *[]stampedRecord) {
	clear(*sp)
	r.scratch.Put(sp)
}

// Snapshot returns up to n recent spans, newest first (n <= 0: all).
func (r *Ring) Snapshot(n int) []Record {
	if r == nil {
		return nil
	}
	sp := r.collect()
	s := *sp
	sort.Slice(s, func(i, j int) bool { return s[i].seq > s[j].seq })
	if n <= 0 || n > len(s) {
		n = len(s)
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, s[i].rec)
	}
	r.putScratch(sp)
	return out
}

// Trace returns every buffered span of the given trace, in recording order
// (children end before parents, so the root is last).
func (r *Ring) Trace(id ID) []Record {
	if r == nil {
		return nil
	}
	sp := r.collect()
	s := *sp
	sort.Slice(s, func(i, j int) bool { return s[i].seq < s[j].seq })
	var out []Record
	for i := range s {
		if s[i].rec.Trace == id {
			out = append(out, s[i].rec)
		}
	}
	r.putScratch(sp)
	return out
}

// Total returns how many spans were ever recorded (including overwritten
// ones).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// errBadLimit is the shared validation failure for ring-dump limits.
var errBadLimit = errors.New("n must be a non-negative integer")

// ParseLimit validates a ?n= ring-dump limit: "" and "0" mean "everything",
// any other non-negative integer is returned as-is, and anything else
// (negative, non-numeric, overflow) is an error. /debug/trace and
// /debug/spans share this so the two endpoints cannot drift.
func ParseLimit(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, errBadLimit
	}
	return v, nil
}

// Handler serves the ring as JSON:
//
//	GET /debug/spans?n=K          {"total": N, "spans": [...]} newest first
//	GET /debug/spans?trace=<hex>  {"trace": "<hex>", "spans": [...]} in
//	                              recording order (root span last)
//
// Invalid n or trace values answer 400.
func (r *Ring) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		if t := q.Get("trace"); t != "" {
			id, err := ParseID(t)
			if err != nil {
				http.Error(w, `{"error":"trace must be a hex span ID"}`, http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"trace": id,
				"spans": r.Trace(id),
			})
			return
		}
		n, err := ParseLimit(q.Get("n"))
		if err != nil {
			http.Error(w, `{"error":"`+err.Error()+`"}`, http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"total": r.Total(),
			"spans": r.Snapshot(n),
		})
	})
}
