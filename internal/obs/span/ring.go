package span

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
)

// DefaultRingCapacity bounds the span ring when callers pass 0. Spans are an
// order of magnitude chattier than placement decisions (one trace is many
// spans), so the default is larger than the decision ring's.
const DefaultRingCapacity = 4096

// Ring is a bounded ring buffer of finished spans — the always-on, in-memory
// sink behind GET /debug/spans. Memory is fixed regardless of traffic; once
// full, the oldest span is overwritten. Nil-safe like every sink.
type Ring struct {
	mu    sync.Mutex
	buf   []Record // guarded by mu; ring storage
	next  int      // guarded by mu; index Record writes next
	size  int      // guarded by mu; live entries (≤ len(buf))
	total uint64   // guarded by mu; spans ever recorded
}

// NewRing returns a ring holding the last capacity spans
// (DefaultRingCapacity when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Record, capacity)}
}

// ExportSpan implements Sink.
func (r *Ring) ExportSpan(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.total++
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.mu.Unlock()
}

// Snapshot returns up to n recent spans, newest first (n <= 0: all).
func (r *Ring) Snapshot(n int) []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.size {
		n = r.size
	}
	out := make([]Record, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Trace returns every buffered span of the given trace, in recording order
// (children end before parents, so the root is last).
func (r *Ring) Trace(id ID) []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Record
	for i := r.size; i >= 1; i-- {
		if rec := r.buf[(r.next-i+len(r.buf))%len(r.buf)]; rec.Trace == id {
			out = append(out, rec)
		}
	}
	return out
}

// Total returns how many spans were ever recorded (including overwritten
// ones).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// errBadLimit is the shared validation failure for ring-dump limits.
var errBadLimit = errors.New("n must be a non-negative integer")

// ParseLimit validates a ?n= ring-dump limit: "" and "0" mean "everything",
// any other non-negative integer is returned as-is, and anything else
// (negative, non-numeric, overflow) is an error. /debug/trace and
// /debug/spans share this so the two endpoints cannot drift.
func ParseLimit(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, errBadLimit
	}
	return v, nil
}

// Handler serves the ring as JSON:
//
//	GET /debug/spans?n=K          {"total": N, "spans": [...]} newest first
//	GET /debug/spans?trace=<hex>  {"trace": "<hex>", "spans": [...]} in
//	                              recording order (root span last)
//
// Invalid n or trace values answer 400.
func (r *Ring) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		if t := q.Get("trace"); t != "" {
			id, err := ParseID(t)
			if err != nil {
				http.Error(w, `{"error":"trace must be a hex span ID"}`, http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{
				"trace": id,
				"spans": r.Trace(id),
			})
			return
		}
		n, err := ParseLimit(q.Get("n"))
		if err != nil {
			http.Error(w, `{"error":"`+err.Error()+`"}`, http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"total": r.Total(),
			"spans": r.Snapshot(n),
		})
	})
}
