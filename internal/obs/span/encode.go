package span

import (
	"encoding/json"
	"strconv"
	"time"
)

// appendRecordJSON appends rec's JSON object encoding to b, producing bytes
// identical to json.Marshal(rec). Records whose strings are all plain ASCII
// (the overwhelmingly common case: span names, attr keys, DC ids) take a
// zero-reflection append path; anything needing escaping, and out-of-range
// timestamps, fall back to encoding/json so the two paths can never disagree
// on hard cases. TestAppendRecordJSONMatchesStdlib pins the equivalence.
func appendRecordJSON(b []byte, rec Record) ([]byte, error) {
	if !recordIsPlain(rec) {
		j, err := json.Marshal(rec)
		if err != nil {
			return b, err
		}
		return append(b, j...), nil
	}
	b = append(b, `{"trace":"`...)
	b = appendHexID(b, rec.Trace)
	b = append(b, `","span":"`...)
	b = appendHexID(b, rec.Span)
	b = append(b, '"')
	if rec.Parent != 0 {
		b = append(b, `,"parent":"`...)
		b = appendHexID(b, rec.Parent)
		b = append(b, '"')
	}
	b = append(b, `,"name":"`...)
	b = append(b, rec.Name...)
	b = append(b, `","start":"`...)
	b = rec.Start.AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","dur_ns":`...)
	b = strconv.AppendInt(b, int64(rec.Duration), 10)
	if rec.Status != "" {
		b = append(b, `,"status":"`...)
		b = append(b, rec.Status...)
		b = append(b, '"')
	}
	if len(rec.Attrs) > 0 {
		b = append(b, `,"attrs":{`...)
		for i, kv := range rec.Attrs {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, '"')
			b = append(b, kv.Key...)
			b = append(b, `":"`...)
			b = append(b, kv.Value...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	return append(b, '}'), nil
}

// appendHexID appends the canonical 16-hex-digit form of id (what ID.String
// returns) without allocating.
func appendHexID(b []byte, id ID) []byte {
	const hexdigits = "0123456789abcdef"
	var d [16]byte
	v := uint64(id)
	for i := 15; i >= 0; i-- {
		d[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return append(b, d[:]...)
}

// recordIsPlain reports whether every string in rec survives JSON encoding
// byte-for-byte unescaped (printable ASCII, no quote/backslash, and none of
// the <>& trio encoding/json HTML-escapes) and the timestamp is in
// MarshalJSON's strict RFC 3339 year range.
func recordIsPlain(rec Record) bool {
	if y := rec.Start.Year(); y < 1 || y > 9999 {
		return false
	}
	if !stringIsPlain(rec.Name) || !stringIsPlain(rec.Status) {
		return false
	}
	for _, kv := range rec.Attrs {
		if !stringIsPlain(kv.Key) || !stringIsPlain(kv.Value) {
			return false
		}
	}
	return true
}

func stringIsPlain(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}
