package span

import (
	"context"
	"log/slog"
)

// LogHandler decorates a slog.Handler so every record emitted with a
// span-carrying context gains trace_id/span_id attributes — the join key
// between logs, the span ring, and sbtrace output. Wrap once at process
// start:
//
//	slog.SetDefault(slog.New(span.NewLogHandler(slog.NewTextHandler(os.Stderr, nil))))
//
// Records logged through a context without a span pass through untouched, so
// the handler is safe to install unconditionally.
type LogHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner.
func NewLogHandler(inner slog.Handler) *LogHandler {
	return &LogHandler{inner: inner}
}

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler, stamping the active trace and span IDs.
func (h *LogHandler) Handle(ctx context.Context, r slog.Record) error {
	if s := FromContext(ctx); s != nil {
		r.AddAttrs(
			slog.String("trace_id", s.TraceID().String()),
			slog.String("span_id", s.SpanID().String()),
		)
	}
	return h.inner.Handle(ctx, r)
}

// WithAttrs implements slog.Handler.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &LogHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup implements slog.Handler.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	return &LogHandler{inner: h.inner.WithGroup(name)}
}
