package span

import (
	"encoding/json"
	"testing"
	"time"
)

// TestAppendRecordJSONMatchesStdlib pins the pooled fast-path encoder to
// encoding/json byte-for-byte, across plain records, records needing string
// escaping (which must take the fallback), empty/zero fields, and awkward
// timestamps.
func TestAppendRecordJSONMatchesStdlib(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 30, 45, 123456789, time.UTC)
	cases := []Record{
		{Trace: 1, Span: 2, Name: "controller.start", Start: base, Duration: 1500},
		{Trace: 0xdeadbeefcafe0123, Span: 0xffffffffffffffff, Parent: 7,
			Name: "kv.HSET", Start: base.Add(3 * time.Hour), Duration: time.Second,
			Status: "error", Attrs: Attrs{{"call", "42"}, {"retry", "true"}}},
		{Trace: 3, Span: 4, Name: "http POST /v1/call/start", Start: base.Round(time.Second), Duration: 0},
		{Trace: 5, Span: 6, Name: "weird \"quoted\" name", Start: base, Duration: 12,
			Attrs: Attrs{{"err", "dial tcp 127.0.0.1:1 -> refused <&>"}}},
		{Trace: 7, Span: 8, Name: "uni\u00e9code", Start: base, Duration: 9},
		{Trace: 9, Span: 10, Name: "ctrl\nchar", Start: base, Duration: 9},
		{Trace: 11, Span: 12, Name: "n", Start: base.In(time.FixedZone("X", 5*3600+1800)), Duration: -5},
		{Trace: 13, Span: 14, Name: "empty-attrs", Start: base, Duration: 1, Attrs: Attrs{}},
	}
	for _, rec := range cases {
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatalf("stdlib marshal: %v", err)
		}
		got, err := appendRecordJSON(nil, rec)
		if err != nil {
			t.Fatalf("appendRecordJSON(%q): %v", rec.Name, err)
		}
		if string(got) != string(want) {
			t.Errorf("record %q:\n got %s\nwant %s", rec.Name, got, want)
		}
	}
}

// TestRingShardingOrder checks that the sharded ring preserves exact
// recording order across shards and honors its capacity exactly.
func TestRingShardingOrder(t *testing.T) {
	r := NewRing(10) // not a multiple of the shard count
	for i := 1; i <= 25; i++ {
		r.ExportSpan(Record{Trace: ID(100), Span: ID(i)})
	}
	if got := r.Total(); got != 25 {
		t.Fatalf("Total = %d, want 25", got)
	}
	snap := r.Snapshot(0)
	if len(snap) != 10 {
		t.Fatalf("Snapshot kept %d records, want capacity 10", len(snap))
	}
	for i, rec := range snap {
		if want := ID(25 - i); rec.Span != want {
			t.Fatalf("snapshot[%d].Span = %v, want %v (newest-first order)", i, rec.Span, want)
		}
	}
	tr := r.Trace(ID(100))
	if len(tr) != 10 {
		t.Fatalf("Trace kept %d records, want 10", len(tr))
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].Span <= tr[i-1].Span {
			t.Fatalf("Trace out of recording order at %d: %v after %v", i, tr[i].Span, tr[i-1].Span)
		}
	}
}
