package span

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
)

// JSONLExporter writes one JSON object per finished span — the durable sink
// behind the -span-log flag, and the input format cmd/sbtrace reads. Each
// record is encoded outside the lock into a pooled buffer (the common
// plain-ASCII case by a zero-reflection appender, anything else by
// encoding/json — both produce identical bytes), then written under the lock.
// Export errors are swallowed (telemetry must never fail the traced
// operation) but remembered for Close.
type JSONLExporter struct {
	bufs sync.Pool // *[]byte encode scratch

	mu  sync.Mutex
	w   *bufio.Writer // guarded by mu
	c   io.Closer     // guarded by mu; nil when the writer isn't ours to close
	err error         // guarded by mu; first write error, reported by Close
}

// NewJSONLExporter wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLExporter(w io.Writer) *JSONLExporter {
	e := &JSONLExporter{w: bufio.NewWriter(w)}
	e.bufs.New = func() any { b := make([]byte, 0, 512); return &b }
	if c, ok := w.(io.Closer); ok {
		e.c = c
	}
	return e
}

// OpenJSONL creates (or truncates) path and returns an exporter writing to it.
func OpenJSONL(path string) (*JSONLExporter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewJSONLExporter(f), nil
}

// ExportSpan implements Sink.
func (e *JSONLExporter) ExportSpan(rec Record) {
	if e == nil {
		return
	}
	bp := e.bufs.Get().(*[]byte)
	buf, encErr := appendRecordJSON((*bp)[:0], rec)
	if encErr == nil {
		buf = append(buf, '\n')
	}
	e.mu.Lock()
	if encErr != nil {
		if e.err == nil {
			e.err = encErr
		}
	} else if _, err := e.w.Write(buf); err != nil && e.err == nil {
		e.err = err
	}
	// Flush per record: each line is complete on disk the moment the span
	// ends, so `sbtrace -f` and tail -f see live traces and a crash loses at
	// most the span being written.
	if err := e.w.Flush(); err != nil && e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
	*bp = buf[:0]
	e.bufs.Put(bp)
}

// Close flushes buffered spans and closes the underlying file if the exporter
// opened it, returning the first error seen across the exporter's lifetime.
func (e *JSONLExporter) Close() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.w.Flush(); err != nil && e.err == nil {
		e.err = err
	}
	if e.c != nil {
		if err := e.c.Close(); err != nil && e.err == nil {
			e.err = err
		}
	}
	return e.err
}

// ReadRecords decodes a span-log stream produced by JSONLExporter. Blank
// lines are skipped; a malformed line is a hard error (the log is
// machine-written, so damage means truncation worth surfacing).
func ReadRecords(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
