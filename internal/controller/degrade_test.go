package controller

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"switchboard/internal/faults"
	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
	"switchboard/internal/trace"
)

// fastOptions keeps chaos tests quick: tight deadlines, no automatic
// retries (the controller's journal is the retry mechanism).
func fastOptions() kvstore.Options {
	return kvstore.Options{
		DialTimeout: 250 * time.Millisecond,
		IOTimeout:   250 * time.Millisecond,
		MaxRetries:  -1,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
}

func startStore(t *testing.T) (*kvstore.Server, net.Listener) {
	t.Helper()
	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	return srv, l
}

// drainJournal retries ReplayJournal until the store accepts the backlog.
func drainJournal(t *testing.T, c *Controller) int {
	t.Helper()
	total := 0
	deadline := time.Now().Add(5 * time.Second)
	for {
		n, err := c.ReplayJournal(context.Background())
		total += n
		if err == nil {
			return total
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal did not drain: %v (flushed %d)", err, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosJournalAndReplay is the acceptance drill: the kvstore is
// partitioned away mid-replay (via the chaos proxy, so its contents
// survive), concurrent controller workers keep processing events without
// blocking past the client's deadline, the missed writes are journaled, and
// after the partition heals the journal replays with zero lost transitions.
func TestChaosJournalAndReplay(t *testing.T) {
	srv, l := startStore(t)
	defer srv.Close()
	proxy, err := faults.NewProxy(l.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client, err := kvstore.DialOptions(proxy.Addr(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctrl, err := New(Config{
		World:         world,
		Store:         client,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	tcfg := trace.DefaultConfig()
	tcfg.Days = 1
	tcfg.CallsPerDay = 300
	g, err := trace.NewGenerator(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := g.GenerateAll()
	events := BuildEvents(recs, DefaultFreeze)

	// Partition the store away for the middle third of the event stream.
	cutAt, restoreAt := len(events)/3, 2*len(events)/3
	var processed atomic.Int64
	var cutOnce, restoreOnce sync.Once

	const workers = 4
	queues := make([][]Event, workers)
	for _, e := range events {
		w := int(e.CallID % workers)
		queues[w] = append(queues[w], e)
	}
	var maxStall int64 // nanoseconds, updated via CAS
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, e := range queues[i] {
				n := processed.Add(1)
				if n == int64(cutAt) {
					cutOnce.Do(proxy.Cut)
				}
				if n == int64(restoreAt) {
					restoreOnce.Do(proxy.Restore)
				}
				begin := time.Now()
				var err error
				switch e.Kind {
				case EventStart:
					_, err = ctrl.CallStartedWithSeries(context.Background(), e.CallID, e.Country, e.SeriesID, e.Time)
				case EventJoin:
					ctrl.persist(context.Background(), e.CallID, "join:"+string(e.Country), e.Media.String())
				case EventFreeze:
					_, _, err = ctrl.ConfigKnown(context.Background(), e.CallID, e.Config, e.Time)
				case EventEnd:
					err = ctrl.CallEnded(context.Background(), e.CallID)
				}
				if err != nil {
					errCh <- err
					return
				}
				stall := int64(time.Since(begin))
				for {
					cur := atomic.LoadInt64(&maxStall)
					if stall <= cur || atomic.CompareAndSwapInt64(&maxStall, cur, stall) {
						break
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// No worker may block past the client's deadlines: one op pays at most
	// a dial plus an I/O timeout (2×250ms) plus queueing behind one such
	// op on the store mutex; 2s is a generous multiple of that.
	if stall := time.Duration(atomic.LoadInt64(&maxStall)); stall > 2*time.Second {
		t.Errorf("a controller op stalled %v during the outage, want bounded by deadlines", stall)
	}

	drainJournal(t, ctrl)
	st := ctrl.Stats()
	if st.Degraded < 1 {
		t.Error("controller never recorded a degraded interval")
	}
	if st.Replayed == 0 {
		t.Error("no journaled writes were replayed")
	}
	if st.Dropped != 0 {
		t.Errorf("%d journaled writes dropped, want 0", st.Dropped)
	}
	if st.JournalDepth != 0 || ctrl.Degraded() {
		t.Errorf("after replay: depth=%d degraded=%v, want drained and healthy", st.JournalDepth, ctrl.Degraded())
	}
	if ctrl.ActiveCalls() != 0 {
		t.Errorf("%d calls leaked", ctrl.ActiveCalls())
	}

	// Zero lost transitions: the store (which never lost data — only
	// connectivity) must show every call ended, with a DC recorded.
	reader, err := kvstore.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	for _, r := range recs {
		key := "call:" + itoa64(r.ID)
		if v, err := reader.HGet(key, "state"); err != nil || v != "ended" {
			t.Fatalf("call %d state = %q, %v; a transition was lost", r.ID, v, err)
		}
		if v, err := reader.HGet(key, "dc"); err != nil || v == "" {
			t.Fatalf("call %d has no persisted dc (%v)", r.ID, err)
		}
	}
}

func itoa64(n uint64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestDegradedServerKillRestart actually kills the store process analogue
// (Server.Close) mid-stream and restarts a fresh one on the same address:
// the controller journals across the gap and drains into the new instance.
func TestDegradedServerKillRestart(t *testing.T) {
	srv, l := startStore(t)
	addr := l.Addr().String()

	client, err := kvstore.DialOptions(addr, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctrl, err := New(Config{World: world, Store: client, ProbeInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	now := time.Now()
	if _, err := ctrl.CallStarted(context.Background(), 1, "JP", now); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Writes during the outage must not error call admission and must land
	// in the journal.
	if _, err := ctrl.CallStarted(context.Background(), 2, "DE", now); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.CallEnded(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if !ctrl.Degraded() || ctrl.JournalDepth() == 0 {
		t.Fatalf("degraded=%v depth=%d, want journaling", ctrl.Degraded(), ctrl.JournalDepth())
	}

	// Restart on the same address.
	srv2 := kvstore.NewServer()
	var l2 net.Listener
	for i := 0; ; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	go srv2.Serve(l2)
	defer srv2.Close()

	flushed := drainJournal(t, ctrl)
	if flushed == 0 {
		t.Error("replay flushed nothing")
	}
	if ctrl.Degraded() || ctrl.JournalDepth() != 0 {
		t.Errorf("degraded=%v depth=%d after restart", ctrl.Degraded(), ctrl.JournalDepth())
	}
	reader, err := kvstore.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	if v, err := reader.HGet("call:2", "state"); err != nil || v != "ended" {
		t.Errorf("journaled transition missing after restart: %q, %v", v, err)
	}
}

// TestJournalCapDropsOldest pins the bounded-journal semantics: beyond the
// cap the oldest writes are dropped and counted.
func TestJournalCapDropsOldest(t *testing.T) {
	srv, l := startStore(t)
	client, err := kvstore.DialOptions(l.Addr().String(), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctrl, err := New(Config{
		World:         world,
		Store:         client,
		JournalCap:    2,
		ProbeInterval: time.Hour, // never probe during the test
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ctrl.persist(context.Background(), uint64(i), "f", "v")
	}
	st := ctrl.Stats()
	if st.JournalDepth != 2 || st.Dropped != 2 {
		t.Errorf("depth=%d dropped=%d, want 2/2", st.JournalDepth, st.Dropped)
	}
	// The survivors are the newest entries.
	ctrl.storeMu.Lock()
	last := ctrl.journal[len(ctrl.journal)-1]
	ctrl.storeMu.Unlock()
	if last.key != "call:3" {
		t.Errorf("newest journal entry = %q, want call:3", last.key)
	}
}

// TestFailDCDrains is the second acceptance drill: failing a DC drains its
// live calls onto surviving DCs within the plan's provisioned backup
// capacity, refuses new placements there, and RecoverDC restores it.
func TestFailDCDrains(t *testing.T) {
	var tokyo, hk int
	for _, dc := range world.DCs() {
		switch dc.Name {
		case "tokyo":
			tokyo = dc.ID
		case "hong-kong":
			hk = dc.ID
		}
	}
	cfg := cfgOf(model.Audio, map[geo.CountryCode]int{"JP": 2})
	// One plan slot: primary capacity at tokyo, backup at hong-kong.
	alloc := [][][]float64{{make([]float64, len(world.DCs()))}}
	alloc[0][0][tokyo] = 2
	alloc[0][0][hk] = 2
	placer := NewPlanPlacer([]model.CallConfig{cfg}, alloc, aclOf, len(world.DCs()))
	ctrl := newController(t, placer)
	now := time.Now()

	// Two frozen calls hosted at tokyo per the plan, one unfrozen call.
	for id := uint64(1); id <= 2; id++ {
		if dc, err := ctrl.CallStarted(context.Background(), id, "JP", now); err != nil || dc != tokyo {
			t.Fatalf("call %d started at %d, %v", id, dc, err)
		}
		if dc, _, err := ctrl.ConfigKnown(context.Background(), id, cfg, now); err != nil || dc != tokyo {
			t.Fatalf("call %d frozen at %d, %v", id, dc, err)
		}
	}
	if _, err := ctrl.CallStarted(context.Background(), 3, "JP", now); err != nil {
		t.Fatal(err)
	}

	if _, err := ctrl.FailDC(context.Background(), -1); !errors.Is(err, ErrInvalidDC) {
		t.Errorf("FailDC(-1) = %v, want ErrInvalidDC", err)
	}

	moved, err := ctrl.FailDC(context.Background(), tokyo)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3 {
		t.Errorf("FailDC moved %d calls, want 3", moved)
	}
	if st := ctrl.Stats(); st.FailedOver != 3 {
		t.Errorf("FailedOver = %d, want 3", st.FailedOver)
	}
	ctrl.mu.Lock()
	for id := uint64(1); id <= 3; id++ {
		if dc := ctrl.calls[id].dc; dc == tokyo {
			ctrl.mu.Unlock()
			t.Fatalf("call %d still on failed DC", id)
		}
	}
	// The two planned calls must land on the plan's backup capacity.
	for id := uint64(1); id <= 2; id++ {
		if dc := ctrl.calls[id].dc; dc != hk {
			ctrl.mu.Unlock()
			t.Fatalf("planned call %d drained to %d, want backup hong-kong (%d)", id, dc, hk)
		}
		if !ctrl.calls[id].planned {
			ctrl.mu.Unlock()
			t.Fatalf("drained call %d lost its plan slot", id)
		}
	}
	ctrl.mu.Unlock()
	if got := ctrl.FailedDCs(); len(got) != 1 || got[0] != tokyo {
		t.Errorf("FailedDCs = %v", got)
	}

	// New JP calls avoid the failed DC...
	if dc, err := ctrl.CallStarted(context.Background(), 10, "JP", now); err != nil || dc == tokyo {
		t.Errorf("new call placed at %d (%v), want a surviving DC", dc, err)
	}
	// ...and freeze-time migration never targets it either.
	if dc, _, err := ctrl.ConfigKnown(context.Background(), 10, cfg, now); err != nil || dc == tokyo {
		t.Errorf("frozen call placed at %d (%v), want a surviving DC", dc, err)
	}

	if err := ctrl.RecoverDC(tokyo); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.FailedDCs(); len(got) != 0 {
		t.Errorf("FailedDCs after recover = %v", got)
	}
	if dc, err := ctrl.CallStarted(context.Background(), 11, "JP", now); err != nil || dc != tokyo {
		t.Errorf("post-recover call at %d (%v), want tokyo", dc, err)
	}
}

// TestFailDCLatencyFallback drains calls when the placer has no backup
// capacity: the nearest surviving DC for the call's population wins.
func TestFailDCLatencyFallback(t *testing.T) {
	ctrl := newController(t, nil) // no placer at all
	now := time.Now()
	dc0, err := ctrl.CallStarted(context.Background(), 1, "JP", now)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := ctrl.FailDC(context.Background(), dc0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Fatalf("moved = %d, want 1", moved)
	}
	ctrl.mu.Lock()
	got := ctrl.calls[1].dc
	ctrl.mu.Unlock()
	want := -1
	for _, dc := range world.DCsByLatency("JP") {
		if dc != dc0 {
			want = dc
			break
		}
	}
	if got != want || got == dc0 {
		t.Errorf("drained to %d, want nearest survivor %d", got, want)
	}
}
