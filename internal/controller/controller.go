// Package controller implements Switchboard's real-time MP assignment
// (§5.4): when a call's first participant joins, the call is assigned to the
// DC closest to them (the first joiner predicts the majority location);
// A minutes in, the call config is frozen and checked against the
// precomputed allocation plan — the usage is tallied against the plan's
// slots, and the call is migrated when the initial choice disagrees with the
// plan. Call state transitions are persisted to a kvstore so the assignment
// survives controller restarts, which is also the write path benchmarked in
// Fig 10.
package controller

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
	"switchboard/internal/obs"
	"switchboard/internal/obs/span"
)

// DefaultFreeze is A, the time into a call when its config is considered
// known (§6.4 picks 300 s, where ~80% of participants have joined).
const DefaultFreeze = 300 * time.Second

// DefaultJournalCap bounds the degraded-mode write-behind journal.
const DefaultJournalCap = 8192

// DefaultProbeInterval is how often a degraded controller probes the store
// for recovery.
const DefaultProbeInterval = time.Second

// Sentinel errors, exposed so the HTTP layer can map failures to correct
// status codes.
var (
	// ErrUnknownCall reports an operation on a call the controller does
	// not know.
	ErrUnknownCall = errors.New("controller: unknown call")
	// ErrDuplicateCall reports a second start for a live call ID.
	ErrDuplicateCall = errors.New("controller: call already started")
	// ErrNoDC reports that no (surviving) DC can host the call.
	ErrNoDC = errors.New("controller: no DC available")
	// ErrInvalidDC reports an out-of-range DC ID.
	ErrInvalidDC = errors.New("controller: invalid DC")
)

// Placer decides the planned DC for a call once its config is known.
// Implementations must be safe under the controller's lock (they are only
// called while it is held).
type Placer interface {
	// Place returns the DC the plan wants for this config in this slot
	// of day, given the call's current DC. planned is false when the
	// config is not covered by the plan (the unanticipated-config case).
	Place(cfg model.CallConfig, slotOfDay, current int) (dc int, planned bool)
	// Release returns a previously placed call's slot to the plan.
	Release(cfg model.CallConfig, slotOfDay, dc int)
}

// AvoidingPlacer is an optional Placer extension: PlaceAvoiding is Place
// restricted to DCs for which avoid returns false. The controller uses it
// to drain a failed DC onto the plan's backup capacity; placers without it
// fall back to Place plus a latency-ordered surviving-DC scan.
type AvoidingPlacer interface {
	PlaceAvoiding(cfg model.CallConfig, slotOfDay, current int, avoid func(dc int) bool) (dc int, planned bool)
}

// Predictor forecasts a recurring call's configuration before participants
// join (§8). Implementations are consulted at call start for calls carrying
// a series ID; a confident prediction lets the controller place the call at
// its planned DC immediately, avoiding the migration at freeze time.
type Predictor interface {
	// PredictConfig returns the expected config of the series' next
	// instance, and whether a usable prediction exists.
	PredictConfig(seriesID uint64, at time.Time) (model.CallConfig, bool)
}

// Stats summarizes controller activity.
type Stats struct {
	// Started counts calls assigned on first join.
	Started int64
	// Frozen counts calls whose config became known.
	Frozen int64
	// Migrated counts calls moved to a different DC at freeze time.
	Migrated int64
	// Unplanned counts frozen calls whose config was not in the plan.
	Unplanned int64
	// Ended counts completed calls.
	Ended int64
	// Predicted counts calls placed from a series-config prediction at
	// start time (§8 extension).
	Predicted int64
	// FrozenRecurring / MigratedRecurring restrict the freeze and
	// migration counters to recurring (series) calls, where prediction
	// can help.
	FrozenRecurring   int64
	MigratedRecurring int64
	// Degraded counts transitions into store-degraded mode (the store
	// became unreachable and writes started journaling).
	Degraded int64
	// JournalDepth is the current number of buffered call-state writes
	// awaiting replay.
	JournalDepth int64
	// Replayed counts journaled writes successfully replayed after a
	// reconnect.
	Replayed int64
	// Dropped counts journaled writes lost to the journal cap.
	Dropped int64
	// Fenced counts call-state writes the store rejected by lease fencing —
	// writes this controller issued after another controller took the lease.
	// They are dropped, not journaled: replaying them later would corrupt the
	// new leader's state.
	Fenced int64
	// FailedOver counts live calls drained off failed DCs by FailDC.
	FailedOver int64
}

// Accumulate adds o's counters into s — how a sharded node folds its
// per-shard controllers into one fleet view for /v1/stats.
func (s *Stats) Accumulate(o Stats) {
	s.Started += o.Started
	s.Frozen += o.Frozen
	s.Migrated += o.Migrated
	s.Unplanned += o.Unplanned
	s.Ended += o.Ended
	s.Predicted += o.Predicted
	s.FrozenRecurring += o.FrozenRecurring
	s.MigratedRecurring += o.MigratedRecurring
	s.Degraded += o.Degraded
	s.JournalDepth += o.JournalDepth
	s.Replayed += o.Replayed
	s.Dropped += o.Dropped
	s.Fenced += o.Fenced
	s.FailedOver += o.FailedOver
}

// RecurringMigrationRate returns MigratedRecurring/FrozenRecurring.
func (s Stats) RecurringMigrationRate() float64 {
	if s.FrozenRecurring == 0 {
		return 0
	}
	return float64(s.MigratedRecurring) / float64(s.FrozenRecurring)
}

// MigrationRate returns Migrated/Frozen.
func (s Stats) MigrationRate() float64 {
	if s.Frozen == 0 {
		return 0
	}
	return float64(s.Migrated) / float64(s.Frozen)
}

// Config parameterizes a Controller.
type Config struct {
	// World supplies DC lookup for the first-joiner heuristic.
	World *geo.World
	// Placer supplies the planned placement; nil means "always keep the
	// initial assignment" (a pure locality controller).
	Placer Placer
	// Store, when non-nil, receives call-state writes (one HSET per
	// transition). Each worker goroutine must use its own Store client;
	// the controller serializes writes through one.
	Store *kvstore.Client
	// KeyPrefix namespaces every call-state key ("" for the unsharded
	// layout). A sharded deployment passes shard.KeyPrefix(i) so shard
	// journals and state never collide in the shared store, letting one
	// process lead shard 2 while standby for shard 5.
	KeyPrefix string
	// Shard is the shard this controller serves, stamped on decision traces
	// and log lines. Meaningful only when KeyPrefix is set; unsharded
	// controllers report shard -1.
	Shard int
	// Freeze is A; zero means DefaultFreeze.
	Freeze time.Duration
	// Predictor, when non-nil, supplies config predictions for recurring
	// calls at start time (§8 extension).
	Predictor Predictor
	// JournalCap bounds the degraded-mode write-behind journal; zero
	// means DefaultJournalCap, negative disables journaling (writes are
	// counted as dropped while the store is unreachable).
	JournalCap int
	// ProbeInterval is how often a degraded controller probes the store
	// for recovery; zero means DefaultProbeInterval.
	ProbeInterval time.Duration
	// Metrics, when non-nil, receives controller telemetry (build with
	// NewMetrics over an obs.Registry). Nil disables metric updates and
	// their clock reads entirely.
	Metrics *Metrics
	// Decisions, when non-nil, records every placement/migration/failover
	// decision into a bounded ring for /debug/trace.
	Decisions *obs.DecisionRing
	// Logger, when non-nil, receives structured events for the rare state
	// transitions worth a log line (degraded-mode entry and recovery). Use a
	// logger built over span.NewLogHandler so the records carry the active
	// trace ID. Nil disables logging.
	Logger *slog.Logger
}

// Controller is the real-time MP selector. Safe for concurrent use.
type Controller struct {
	world     *geo.World
	placer    Placer
	store     *kvstore.Client
	freeze    time.Duration
	predictor Predictor
	keyPrefix string
	shard     int // -1 when unsharded

	journalCap int
	probeEvery time.Duration

	// metrics is never nil (a zero-value Metrics when telemetry is off);
	// decisions may be nil. obsOn gates the wall-clock reads that only
	// telemetry needs, so the uninstrumented hot path stays clock-free.
	metrics   *Metrics
	decisions *obs.DecisionRing
	obsOn     bool
	logger    *slog.Logger // nil disables structured event logs

	// dcNames caches the decimal rendering of every DC ID so persisting a
	// placement does not strconv.Itoa on the hot path (immutable after New).
	dcNames []string

	mu        sync.Mutex
	calls     map[uint64]*callState // guarded by mu
	stats     Stats                 // guarded by mu
	failed    map[int]bool          // guarded by mu; DCs declared down via FailDC
	recoverOK func(id uint64) bool  // guarded by mu; nil admits all (see SetRecoverFilter)

	// storeMu guards the store client and the write-behind journal. It is
	// strictly ordered after mu: persist() never holds mu, and FailDC/
	// ConfigKnown release mu before persisting. Keeping store I/O off mu
	// means a stalled store can never block call admission.
	storeMu       sync.Mutex
	journal       []journalEntry // guarded by storeMu
	degraded      bool           // guarded by storeMu
	degradedCount int64          // guarded by storeMu
	replayed      int64          // guarded by storeMu
	dropped       int64          // guarded by storeMu
	fenced        int64          // guarded by storeMu
	lastProbe     time.Time      // guarded by storeMu
}

// journalEntry is one buffered HSET awaiting replay.
type journalEntry struct {
	key, field, value string
}

type callState struct {
	dc      int
	slot    int
	series  uint64
	cfg     model.CallConfig
	planned bool
	frozen  bool
	country geo.CountryCode // first joiner, kept for failover rerouting
}

// New returns a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("controller: World is required")
	}
	if cfg.Freeze == 0 {
		cfg.Freeze = DefaultFreeze
	}
	if cfg.JournalCap == 0 {
		cfg.JournalCap = DefaultJournalCap
	}
	if cfg.JournalCap < 0 {
		cfg.JournalCap = 0
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	m := cfg.Metrics
	if m == nil {
		m = &Metrics{}
	}
	shard := -1
	if cfg.KeyPrefix != "" {
		shard = cfg.Shard
	}
	dcNames := make([]string, len(cfg.World.DCs()))
	for i := range dcNames {
		dcNames[i] = strconv.Itoa(i)
	}
	return &Controller{
		world:      cfg.World,
		placer:     cfg.Placer,
		store:      cfg.Store,
		freeze:     cfg.Freeze,
		predictor:  cfg.Predictor,
		keyPrefix:  cfg.KeyPrefix,
		shard:      shard,
		journalCap: cfg.JournalCap,
		probeEvery: cfg.ProbeInterval,
		metrics:    m,
		decisions:  cfg.Decisions,
		logger:     cfg.Logger,
		obsOn:      cfg.Metrics != nil || cfg.Decisions != nil,
		calls:      make(map[uint64]*callState),
		failed:     make(map[int]bool),
		dcNames:    dcNames,
	}, nil
}

// dcName renders a DC ID without allocating (cached for every DC the world
// knows; the fallback covers out-of-range IDs from replayed foreign state).
func (c *Controller) dcName(dc int) string {
	if dc >= 0 && dc < len(c.dcNames) {
		return c.dcNames[dc]
	}
	return strconv.Itoa(dc) //sblint:allowalloc(out-of-range fallback; never taken for world DCs)
}

// storeSnapshot reads the degraded flag and journal depth for decision
// records; only called when the decision ring is enabled. Without a store
// both are trivially zero, so the hot path skips storeMu entirely.
func (c *Controller) storeSnapshot() (bool, int) {
	if c.store == nil {
		return false, 0
	}
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	return c.degraded, len(c.journal)
}

// record stamps store-path state onto a decision and appends it to the ring.
// No-op when tracing is off. The caller supplies the timing it already
// measured so the trace costs no extra clock reads.
func (c *Controller) record(d obs.Decision, start time.Time, dur time.Duration) {
	if c.decisions == nil {
		return
	}
	d.Time = start
	d.Duration = dur
	d.Shard = c.shard
	d.Degraded, d.JournalDepth = c.storeSnapshot()
	c.decisions.Record(d)
}

// Freeze returns the configured config-freeze delay A.
func (c *Controller) Freeze() time.Duration { return c.freeze }

// CallStarted assigns a new call to the DC closest to its first joiner
// (within the joiner's region, as the service does) and returns the DC ID.
// ctx carries the request's trace span when the caller is instrumented
// (context.Background() is fine otherwise).
//
// This is the per-placement hot path BenchmarkCorePlacement measures; the
// hotpathalloc analyzer keeps its transitive closure allocation-free apart
// from the per-call state insert and explicitly justified cold branches.
//
//sblint:hotpath
func (c *Controller) CallStarted(ctx context.Context, id uint64, firstJoiner geo.CountryCode, at time.Time) (int, error) {
	return c.CallStartedWithSeries(ctx, id, firstJoiner, 0, at)
}

// CallStartedWithSeries is CallStarted for a call known to belong to a
// recurring meeting series. When a Predictor is configured and yields a
// prediction, the call is placed for the predicted config immediately (§8),
// which avoids a migration at freeze time if the prediction holds.
func (c *Controller) CallStartedWithSeries(ctx context.Context, id uint64, firstJoiner geo.CountryCode, seriesID uint64, at time.Time) (dcOut int, errOut error) {
	sp := span.FromContext(ctx).NewChild("controller.start")
	if sp != nil {
		sp.SetAttrUint("call", id)
		defer func() { //sblint:allowalloc(error-path safety net; reached only when tracing is active, and the happy path publishes via EndWithDuration so this defer no-ops)
			sp.SetError(errOut)
			sp.End()
		}()
		// Only the persist path reads the span back out of the context, so
		// the context wrapper is built solely when a store is attached.
		if c.store != nil {
			ctx = span.ContextWith(ctx, sp)
		}
	}
	// The span already read the clock at birth; reuse that instant as the
	// placement timer's start instead of reading it again.
	obsT := sp.StartTime()
	if obsT.IsZero() {
		obsT = c.obsStart()
	}
	dc := c.world.NearestDC(firstJoiner, true)
	if dc < 0 {
		dc = c.world.NearestDC(firstJoiner, false)
	}
	if dc < 0 {
		return -1, fmt.Errorf("%w: no DC for country %q", ErrNoDC, firstJoiner) //sblint:allowalloc(error path; placement failed)
	}
	predicted := false
	if seriesID != 0 && c.predictor != nil {
		if cfg, ok := c.predictor.PredictConfig(seriesID, at); ok && len(cfg.Spread) > 0 { //sblint:allowalloc(predictor is an injected interface; its cost is the caller's choice)
			if target := c.placeFor(cfg, at, dc); target >= 0 {
				dc = target
				predicted = true
			}
		}
	}
	c.mu.Lock()
	if _, dup := c.calls[id]; dup {
		c.mu.Unlock()
		return -1, fmt.Errorf("%w: %d", ErrDuplicateCall, id) //sblint:allowalloc(error path; duplicate call rejected)
	}
	// A failed DC must not admit new calls: reroute to the nearest
	// surviving one before the call is recorded.
	rerouted := false
	if c.failed[dc] {
		if alt := c.nearestSurvivingLocked(firstJoiner); alt >= 0 {
			dc = alt
			predicted = false
			rerouted = true
		} else {
			c.mu.Unlock()
			return -1, fmt.Errorf("%w: all DCs reachable from %q failed", ErrNoDC, firstJoiner) //sblint:allowalloc(error path; every DC failed)
		}
	}
	c.calls[id] = &callState{dc: dc, slot: model.SlotOfDay(at), series: seriesID, country: firstJoiner} //sblint:allowalloc(the one intended per-call allocation: call state)
	c.stats.Started++
	if predicted {
		c.stats.Predicted++
	}
	c.mu.Unlock()
	c.metrics.Started.Inc()
	if predicted {
		c.metrics.Predicted.Inc()
	}
	c.metrics.ActiveCalls.Add(1)
	dur, secs := sinceObs(obsT)
	if secs > 0 {
		c.observePlace(sp, secs)
		// The placement decision is complete: publish the span now with the
		// duration already measured for the histogram, instead of reading
		// the clock again in the deferred End (which becomes a no-op). The
		// persist below is traced by its own child span.
		sp.EndWithDuration(dur)
	}
	if c.decisions != nil {
		reason := "first-joiner"
		// Candidates are recorded only on the reroute path, where the
		// latency-ordered scan already ran; computing the full ordering
		// just for the trace would put a sort on the admission hot path.
		var candidates []int
		if predicted {
			reason = "predicted"
		} else if rerouted {
			reason = "reroute-failed-dc"
			candidates = c.world.DCsByLatency(firstJoiner)
		}
		c.record(obs.Decision{
			Kind:       "start",
			Call:       id,
			Candidates: candidates,
			Chosen:     dc,
			Prev:       -1,
			Planned:    predicted,
			Reason:     reason,
		}, obsT, dur)
	}
	c.persist(ctx, id, "dc", c.dcName(dc))
	return dc, nil
}

// placeFor asks where a call of the given (predicted) config would be
// hosted, without debiting plan slots (the real debit happens at freeze).
func (c *Controller) placeFor(cfg model.CallConfig, at time.Time, current int) int {
	if c.placer != nil {
		if dc, ok := c.placer.Place(cfg, model.SlotOfDay(at), current); ok { //sblint:allowalloc(placer is an injected interface; its cost is the caller's choice)
			// Immediately return the slot: the freeze-time Place
			// will take it for real.
			c.placer.Release(cfg, model.SlotOfDay(at), dc) //sblint:allowalloc(placer is an injected interface; its cost is the caller's choice)
			return dc
		}
	}
	if maj, _ := cfg.Spread.Majority(); maj != "" {
		return c.world.NearestDC(maj, true)
	}
	return -1
}

// ConfigKnown freezes the call's config (A into the call), reconciles the
// call against the allocation plan, and returns the (possibly new) DC and
// whether the call migrated.
func (c *Controller) ConfigKnown(ctx context.Context, id uint64, cfg model.CallConfig, at time.Time) (dc int, migrated bool, err error) {
	sp := span.FromContext(ctx).NewChild("controller.freeze")
	if sp != nil {
		sp.SetAttrUint("call", id)
		// Error and early returns never migrate, so the migrated attr is
		// stamped at the success exit below, before the early publish.
		defer func() {
			sp.SetError(err)
			sp.End()
		}()
		if c.store != nil {
			ctx = span.ContextWith(ctx, sp)
		}
	}
	obsT := sp.StartTime()
	if obsT.IsZero() {
		obsT = c.obsStart()
	}
	c.mu.Lock()
	st, ok := c.calls[id]
	if !ok {
		c.mu.Unlock()
		return -1, false, fmt.Errorf("%w: %d", ErrUnknownCall, id)
	}
	if st.frozen {
		c.mu.Unlock()
		return st.dc, false, nil
	}
	st.frozen = true
	st.cfg = cfg
	st.slot = model.SlotOfDay(at)
	c.stats.Frozen++
	if st.series != 0 {
		c.stats.FrozenRecurring++
	}

	prev := st.dc
	reason := "keep"
	unplanned := false
	target := st.dc
	if c.placer != nil {
		planned, inPlan := c.placePreferringSurvivorsLocked(cfg, st.slot, st.dc)
		if inPlan {
			target = planned
			st.planned = true
			reason = "plan"
		} else {
			c.stats.Unplanned++
			unplanned = true
			reason = "unplanned-majority"
			// Unanticipated config: host at the closest DC to the
			// majority of participants (§5.4(b), last paragraph).
			if maj, _ := cfg.Spread.Majority(); maj != "" {
				if closest := c.world.NearestDC(maj, true); closest >= 0 {
					target = closest
				}
			}
		}
	}
	// Never migrate onto (or stay on) a DC that has been failed; fall back
	// to the nearest surviving DC for the call's population.
	if c.failed[target] {
		if st.planned {
			c.placer.Release(cfg, st.slot, target)
			st.planned = false
		}
		alt := -1
		if maj, _ := cfg.Spread.Majority(); maj != "" {
			alt = c.nearestSurvivingLocked(maj)
		}
		if alt < 0 {
			alt = c.nearestSurvivingLocked(st.country)
		}
		if alt >= 0 {
			target = alt
			reason = "reroute-failed-dc"
		} else {
			target = st.dc // nothing survives; keep the old record
		}
	}
	if target != st.dc {
		st.dc = target
		c.stats.Migrated++
		if st.series != 0 {
			c.stats.MigratedRecurring++
		}
		migrated = true
	}
	dc = st.dc
	planned := st.planned
	c.mu.Unlock()
	c.metrics.Frozen.Inc()
	if migrated {
		c.metrics.Migrated.Inc()
	}
	if unplanned {
		c.metrics.Unplanned.Inc()
	}
	dur, secs := sinceObs(obsT)
	if migrated {
		sp.SetAttr("migrated", "true")
	}
	if secs > 0 {
		c.observePlace(sp, secs)
		// Decision done: publish with the histogram's duration, one clock
		// read instead of two (the deferred End no-ops after this).
		sp.EndWithDuration(dur)
	}
	c.record(obs.Decision{
		Kind:     "freeze",
		Call:     id,
		Config:   cfg.Key(),
		Chosen:   dc,
		Prev:     prev,
		Planned:  planned,
		Migrated: migrated,
		Reason:   reason,
	}, obsT, dur)
	c.persist(ctx, id, "config", cfg.Key())
	if migrated {
		c.persist(ctx, id, "dc", c.dcName(dc))
	}
	return dc, migrated, nil
}

// CallEnded releases the call's state and returns its plan slot if any.
func (c *Controller) CallEnded(ctx context.Context, id uint64) error {
	c.mu.Lock()
	st, ok := c.calls[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownCall, id)
	}
	delete(c.calls, id)
	c.stats.Ended++
	if st.planned && c.placer != nil {
		c.placer.Release(st.cfg, st.slot, st.dc)
	}
	c.mu.Unlock()
	c.metrics.Ended.Inc()
	c.metrics.ActiveCalls.Add(-1)
	c.persist(ctx, id, "state", "ended")
	return nil
}

// ParticipantJoined records a later participant joining a live call. Joins
// only matter as state writes in this model — they do not change placement.
func (c *Controller) ParticipantJoined(ctx context.Context, id uint64, country geo.CountryCode, media model.MediaType) {
	c.persist(ctx, id, "join:"+string(country), media.String())
}

// ActiveCalls returns the number of in-flight calls.
func (c *Controller) ActiveCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.calls)
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	c.storeMu.Lock()
	s.Degraded = c.degradedCount
	s.JournalDepth = int64(len(c.journal))
	s.Replayed = c.replayed
	s.Dropped = c.dropped
	s.Fenced = c.fenced
	c.storeMu.Unlock()
	return s
}

// persistDone finishes one persist: it publishes the post-write journal
// depth, releases storeMu, and then records the persist latency outside the
// lock.
//
//sblint:holds storeMu
func (c *Controller) persistDone(obsT time.Time) {
	c.metrics.JournalDepth.Set(float64(len(c.journal)))
	c.storeMu.Unlock()
	if _, secs := sinceObs(obsT); secs > 0 {
		c.metrics.PersistSeconds.Observe(secs)
	}
}

// persist writes one call-state transition to the store. The store is an
// availability optimization, not the source of truth for in-flight
// decisions, so a write never blocks a worker beyond the client's own I/O
// deadline: when the store is unreachable the controller enters degraded
// mode and buffers the write in a bounded journal instead, replaying it once
// a periodic probe finds the store healthy again.
//
// persist is a fencing entry point: every store mutation reachable from it
// must go through the client's fence-arming typed wrappers (enforced by the
// fenceflow analyzer), so a deposed leader's writes are rejected instead of
// landing over the successor's state.
//
//sblint:fencepath
func (c *Controller) persist(ctx context.Context, id uint64, field, value string) {
	if c.store == nil {
		return
	}
	ctx, sp := span.Child(ctx, "controller.persist")
	if sp != nil {
		sp.SetAttr("field", field)
		defer sp.End()
	}
	key := c.keyPrefix + "call:" + strconv.FormatUint(id, 10) //sblint:allowalloc(store key; written over the wire, so it must materialize)
	obsT := c.obsStart()
	c.storeMu.Lock()
	defer c.persistDone(obsT)
	if c.degraded {
		// Probe at most once per interval; the client's own fail-fast
		// window (ErrBroken until its redial backoff expires) keeps a
		// probe cheap even when the store is still down.
		if time.Since(c.lastProbe) >= c.probeEvery {
			c.lastProbe = time.Now()
			if c.store.PingContext(ctx) == nil {
				c.replayLocked(ctx)
			}
		}
		if c.degraded {
			sp.SetAttr("journaled", "true")
			c.appendJournalLocked(journalEntry{key, field, value})
			return
		}
	}
	err := c.store.HSetContext(ctx, key, field, value)
	switch {
	case err == nil:
	case kvstore.IsFencedError(err):
		// Another controller holds a newer lease epoch: this write (and any
		// retry of it) belongs to a leadership this controller no longer has.
		// Journaling it would replay a deposed leader's state over the
		// successor's, so it is dropped and counted instead.
		c.fenced++
		c.metrics.FencedWrites.Inc()
		sp.SetError(err)
		if c.logger != nil {
			c.logger.WarnContext(ctx, "call-state write fenced; leadership lost", //sblint:allowalloc(fenced-write log; fires only on leadership loss)
				"err", err, "key", key, "field", field)
		}
	case !kvstore.IsServerError(err) || kvstore.IsReplWaitError(err):
		// Transport failure — or REPLWAIT, where the store applied the write
		// locally but could not confirm replication, which the controller
		// treats like a transport failure: the journaled retry is an
		// idempotent HSET, so replaying an already-applied write is safe.
		c.degraded = true
		c.degradedCount++
		c.metrics.Degraded.Inc()
		c.lastProbe = time.Now()
		sp.SetError(err)
		sp.SetAttr("journaled", "true")
		c.appendJournalLocked(journalEntry{key, field, value})
		if c.logger != nil {
			c.logger.WarnContext(ctx, "store degraded; journaling call-state writes", //sblint:allowalloc(degraded-mode log; fires once per outage transition)
				"err", err, "journal_depth", len(c.journal))
		}
	}
}

// appendJournalLocked buffers a write, dropping the oldest entry when the
// cap is hit. Callers hold storeMu.
//
//sblint:holds storeMu
func (c *Controller) appendJournalLocked(e journalEntry) {
	if c.journalCap <= 0 {
		c.dropped++
		c.metrics.Dropped.Inc()
		return
	}
	if len(c.journal) >= c.journalCap {
		c.journal = c.journal[1:]
		c.dropped++
		c.metrics.Dropped.Inc()
	}
	c.journal = append(c.journal, e) //sblint:allowalloc(journal growth is the degraded-mode design; bounded by journalCap)
}

// replayLocked drains the journal into a healthy store and clears degraded
// mode. If a write fails mid-drain the controller stays degraded with the
// unflushed suffix intact. Callers hold storeMu.
//
// Journal drain is a fencing entry point (see persist): drained writes must
// stay on the fence-arming wrappers so a deposed leader's backlog fences
// out instead of applying.
//
//sblint:fencepath
//sblint:holds storeMu
func (c *Controller) replayLocked(ctx context.Context) {
	var n int64
	for len(c.journal) > 0 {
		e := c.journal[0]
		err := c.store.HSetContext(ctx, e.key, e.field, e.value)
		if kvstore.IsFencedError(err) {
			// Leadership moved while this write sat in the journal; it must
			// not land on the new leader's state. Drop it and keep draining.
			c.journal = c.journal[1:]
			c.fenced++
			c.metrics.FencedWrites.Inc()
			continue
		}
		if err != nil && (!kvstore.IsServerError(err) || kvstore.IsReplWaitError(err)) {
			return // still down; keep journaling
		}
		c.journal = c.journal[1:]
		c.replayed++
		n++
		c.metrics.Replayed.Inc()
	}
	c.degraded = false
	c.metrics.JournalDepth.Set(float64(len(c.journal)))
	if c.logger != nil {
		c.logger.InfoContext(ctx, "store recovered; journal replayed", "replayed", n) //sblint:allowalloc(recovery log; fires once per outage)
	}
}

// ReplayJournal forces an immediate probe-and-drain, returning how many
// journaled writes were flushed. Callers use it to bound recovery latency
// instead of waiting for the next persist-triggered probe.
//
//sblint:fencepath
func (c *Controller) ReplayJournal(ctx context.Context) (int, error) {
	if c.store == nil {
		return 0, nil
	}
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if !c.degraded {
		return 0, nil
	}
	c.lastProbe = time.Now()
	before := c.replayed
	if err := c.store.PingContext(ctx); err != nil {
		return 0, err
	}
	c.replayLocked(ctx)
	n := int(c.replayed - before)
	if c.degraded {
		return n, fmt.Errorf("controller: store lost again after replaying %d writes", n)
	}
	return n, nil
}

// Shard returns the shard this controller serves (-1 when unsharded).
func (c *Controller) Shard() int { return c.shard }

// RecoverCalls rebuilds in-flight call state from the store: every persisted
// call under this controller's key prefix that has not ended is re-admitted
// at its recorded DC (frozen with its recorded config when one was
// persisted). A successor shard leader calls this after taking over so calls
// started under the previous leader keep their freeze and end transitions
// instead of 404ing. Recovered calls carry no plan accounting (planned=false
// — their slot debit died with the previous leader) and no first-joiner
// country, a documented drift the eval drill quantifies. Calls the
// controller already knows are left untouched. Returns how many calls were
// recovered.
func (c *Controller) RecoverCalls(ctx context.Context) (n int, err error) {
	if c.store == nil {
		return 0, nil
	}
	ctx, sp := span.Child(ctx, "controller.recover")
	if sp != nil {
		defer func() {
			sp.SetAttr("recovered", strconv.Itoa(n))
			sp.SetError(err)
			sp.End()
		}()
	}
	prefix := c.keyPrefix + "call:"
	type rec struct {
		id     uint64
		dc     int
		frozen bool
		cfg    model.CallConfig
	}
	var recs []rec
	c.mu.Lock()
	admit := c.recoverOK
	c.mu.Unlock()
	c.storeMu.Lock()
	keys, err := c.store.KeysPrefixContext(ctx, prefix)
	if err != nil {
		c.storeMu.Unlock()
		return 0, err
	}
	for _, k := range keys {
		id, perr := strconv.ParseUint(k[len(prefix):], 10, 64)
		if perr != nil {
			continue // not a call-state key (e.g. a lease living under the prefix)
		}
		if admit != nil && !admit(id) {
			continue // ownership moved away during a reshard; retired key
		}
		h, herr := c.store.HGetAllContext(ctx, k)
		if herr != nil {
			c.storeMu.Unlock()
			return 0, herr
		}
		if h["state"] == "ended" {
			continue
		}
		dc, derr := strconv.Atoi(h["dc"])
		if derr != nil || dc < 0 {
			continue
		}
		r := rec{id: id, dc: dc}
		if key := h["config"]; key != "" {
			if cfg, cerr := model.ParseConfigKey(key); cerr == nil {
				r.frozen = true
				r.cfg = cfg
			}
		}
		recs = append(recs, r)
	}
	c.storeMu.Unlock()

	c.mu.Lock()
	for _, r := range recs {
		if _, dup := c.calls[r.id]; dup {
			continue
		}
		if r.dc >= len(c.world.DCs()) {
			continue
		}
		c.calls[r.id] = &callState{dc: r.dc, frozen: r.frozen, cfg: r.cfg}
		n++
	}
	c.mu.Unlock()
	if n > 0 {
		c.metrics.ActiveCalls.Add(float64(n))
	}
	return n, nil
}

// SetLease stamps every subsequent call-state write with the given lease
// epoch (the store's FENCE prefix), so writes from this controller are
// rejected the moment another controller is granted a newer lease. Called by
// the Elector on winning leadership.
func (c *Controller) SetLease(key string, epoch int64) {
	if c.store == nil {
		return
	}
	c.storeMu.Lock()
	c.store.SetFence(key, epoch)
	c.storeMu.Unlock()
}

// ClearLease stops fencing call-state writes (e.g. after stepping down in an
// orderly way, where unfenced writes are no longer expected at all).
func (c *Controller) ClearLease() {
	if c.store == nil {
		return
	}
	c.storeMu.Lock()
	c.store.ClearFence()
	c.storeMu.Unlock()
}

// Degraded reports whether call-state writes are currently journaled
// instead of persisted.
func (c *Controller) Degraded() bool {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	return c.degraded
}

// JournalDepth returns the number of buffered writes awaiting replay.
func (c *Controller) JournalDepth() int {
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	return len(c.journal)
}

// nearestSurvivingLocked returns the closest non-failed DC to code, or -1.
// Callers hold c.mu.
//
//sblint:holds mu
func (c *Controller) nearestSurvivingLocked(code geo.CountryCode) int {
	for _, dc := range c.world.DCsByLatency(code) {
		if !c.failed[dc] {
			return dc
		}
	}
	return -1
}

// placePreferringSurvivorsLocked is Place, but when DCs have been failed it
// steers the plan away from them — natively via AvoidingPlacer when the
// placer supports it, otherwise by letting the caller's post-check reroute.
// Callers hold c.mu.
//
//sblint:holds mu
func (c *Controller) placePreferringSurvivorsLocked(cfg model.CallConfig, slot, current int) (int, bool) {
	if len(c.failed) > 0 {
		if ap, ok := c.placer.(AvoidingPlacer); ok {
			return ap.PlaceAvoiding(cfg, slot, current, func(dc int) bool { return c.failed[dc] })
		}
	}
	return c.placer.Place(cfg, slot, current)
}

// drainTargetLocked picks the DC a live call should move to when its host
// fails: the plan's backup capacity when the placer can avoid failed DCs,
// else the nearest surviving DC for the call's population. Returns -1 when
// nothing survives. Callers hold c.mu.
//
//sblint:holds mu
func (c *Controller) drainTargetLocked(st *callState) int {
	if c.placer != nil && st.frozen {
		wasPlanned := st.planned
		if wasPlanned {
			c.placer.Release(st.cfg, st.slot, st.dc)
			st.planned = false
		}
		if ap, ok := c.placer.(AvoidingPlacer); ok {
			if dc, inPlan := ap.PlaceAvoiding(st.cfg, st.slot, st.dc, func(dc int) bool { return c.failed[dc] }); inPlan && !c.failed[dc] {
				st.planned = true
				return dc
			}
		} else if wasPlanned {
			if dc, inPlan := c.placer.Place(st.cfg, st.slot, st.dc); inPlan {
				if !c.failed[dc] {
					st.planned = true
					return dc
				}
				c.placer.Release(st.cfg, st.slot, dc)
			}
		}
	}
	// Latency fallback: the call's majority country, else its first joiner.
	if st.frozen {
		if maj, _ := st.cfg.Spread.Majority(); maj != "" {
			if dc := c.nearestSurvivingLocked(maj); dc >= 0 {
				return dc
			}
		}
	}
	return c.nearestSurvivingLocked(st.country)
}

// FailDC declares a DC down and drains its live calls onto surviving
// capacity, preferring the allocation plan's backup slots. It returns how
// many calls were moved. Calls with no surviving DC stay recorded on the
// failed DC (and are counted as moved=0, not dropped — they will reroute at
// freeze or end normally).
func (c *Controller) FailDC(ctx context.Context, dc int) (int, error) {
	if dc < 0 || len(c.world.DCs()) <= dc {
		return 0, fmt.Errorf("%w: %d", ErrInvalidDC, dc)
	}
	ctx, sp := span.Child(ctx, "controller.faildc")
	if sp != nil {
		sp.SetAttr("dc", c.dcName(dc))
		defer sp.End()
	}
	obsT := c.obsStart()
	type move struct {
		id uint64
		dc int
	}
	var moves []move
	c.mu.Lock()
	if c.failed[dc] {
		c.mu.Unlock()
		return 0, nil
	}
	c.failed[dc] = true
	for id, st := range c.calls {
		if st.dc != dc {
			continue
		}
		if target := c.drainTargetLocked(st); target >= 0 && target != dc {
			st.dc = target
			c.stats.FailedOver++
			moves = append(moves, move{id, target})
		}
	}
	c.mu.Unlock()
	c.metrics.FailedOver.Add(uint64(len(moves)))
	// Persist outside c.mu: store I/O must not block call admission.
	for _, m := range moves {
		c.record(obs.Decision{
			Kind:     "failover",
			Call:     m.id,
			Chosen:   m.dc,
			Prev:     dc,
			Migrated: true,
			Reason:   "drain-failed-dc",
		}, obsT, 0)
		c.persist(ctx, m.id, "dc", strconv.Itoa(m.dc))
	}
	return len(moves), nil
}

// RecoverDC marks a failed DC healthy again. Drained calls stay where they
// are; only new placements may use the DC.
func (c *Controller) RecoverDC(dc int) error {
	if dc < 0 || len(c.world.DCs()) <= dc {
		return fmt.Errorf("%w: %d", ErrInvalidDC, dc)
	}
	c.mu.Lock()
	delete(c.failed, dc)
	c.mu.Unlock()
	return nil
}

// FailedDCs returns the currently failed DC IDs, sorted.
func (c *Controller) FailedDCs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.failed))
	for dc := range c.failed {
		out = append(out, dc)
	}
	sort.Ints(out)
	return out
}

// PlanPlacer tracks remaining per-DC slots of an allocation plan
// (Alloc[t][c][x]) and serves Place/Release with §5.4's semantics: prefer
// the current DC when the plan still has room there, otherwise the
// lowest-ACL DC with room, otherwise the DC with the most headroom.
type PlanPlacer struct {
	mu    sync.Mutex
	slots []map[string][]float64 // guarded by mu; [planSlot][configKey] -> remaining per DC
	nT    int
	acl   map[string][]float64 // configKey -> per-DC ACL (immutable after NewPlanPlacer)
}

// NewPlanPlacer indexes an allocation plan. configs must match alloc's
// second dimension; aclOf returns the per-DC ACL used to order preferences.
func NewPlanPlacer(configs []model.CallConfig, alloc [][][]float64, aclOf func(cfg model.CallConfig, dc int) float64, nDCs int) *PlanPlacer {
	p := &PlanPlacer{nT: len(alloc), acl: make(map[string][]float64)}
	p.slots = make([]map[string][]float64, len(alloc))
	for t := range alloc {
		p.slots[t] = make(map[string][]float64)
		for c, cfg := range configs {
			row := make([]float64, len(alloc[t][c]))
			copy(row, alloc[t][c])
			var any bool
			for _, v := range row {
				if v > 0 {
					any = true
					break
				}
			}
			if any {
				p.slots[t][cfg.Key()] = row
			}
		}
	}
	for _, cfg := range configs {
		key := cfg.Key()
		if _, done := p.acl[key]; done {
			continue
		}
		a := make([]float64, nDCs)
		for x := 0; x < nDCs; x++ {
			a[x] = aclOf(cfg, x)
		}
		p.acl[key] = a
	}
	return p
}

// planSlot maps a slot of day onto the plan's (possibly coarsened) slots.
func (p *PlanPlacer) planSlot(slotOfDay int) int {
	if p.nT == 0 {
		return 0
	}
	s := slotOfDay * p.nT / model.SlotsPerDay
	if s >= p.nT {
		s = p.nT - 1
	}
	return s
}

// Place implements Placer.
func (p *PlanPlacer) Place(cfg model.CallConfig, slotOfDay, current int) (int, bool) {
	return p.place(cfg, slotOfDay, current, nil)
}

// PlaceAvoiding implements AvoidingPlacer: Place restricted to DCs for
// which avoid returns false, used to drain failed DCs onto backup capacity.
func (p *PlanPlacer) PlaceAvoiding(cfg model.CallConfig, slotOfDay, current int, avoid func(dc int) bool) (int, bool) {
	return p.place(cfg, slotOfDay, current, avoid)
}

func (p *PlanPlacer) place(cfg model.CallConfig, slotOfDay, current int, avoid func(dc int) bool) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := cfg.Key()
	row, ok := p.slots[p.planSlot(slotOfDay)][key]
	if !ok {
		return current, false
	}
	skip := func(x int) bool { return avoid != nil && avoid(x) }
	// Keep the call where it is if the plan has room there.
	if current >= 0 && current < len(row) && row[current] >= 1 && !skip(current) {
		row[current]--
		return current, true
	}
	// Otherwise the lowest-ACL DC with remaining room.
	acl := p.acl[key]
	best := -1
	for x, rem := range row {
		if rem >= 1 && !skip(x) && (best < 0 || acl[x] < acl[best]) {
			best = x
		}
	}
	if best >= 0 {
		row[best]--
		return best, true
	}
	// Plan exhausted for this config in this slot: fall back to the DC
	// with the largest fractional remainder, keeping the tally honest.
	bestRem := 0.0
	for x, rem := range row {
		if rem > bestRem && !skip(x) {
			best, bestRem = x, rem
		}
	}
	if best >= 0 {
		row[best] = 0
		return best, true
	}
	return current, false
}

// Release implements Placer.
func (p *PlanPlacer) Release(cfg model.CallConfig, slotOfDay, dc int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if row, ok := p.slots[p.planSlot(slotOfDay)][cfg.Key()]; ok && dc >= 0 && dc < len(row) {
		row[dc]++
	}
}

// MinACLPlacer places every config at its minimum-ACL DC — the
// locality-first policy expressed as a Placer, used for the §6.4 migration
// comparison.
type MinACLPlacer struct {
	ACLOf func(cfg model.CallConfig, dc int) float64
	NDCs  int
}

// Place implements Placer.
func (p *MinACLPlacer) Place(cfg model.CallConfig, _ int, _ int) (int, bool) {
	return p.PlaceAvoiding(cfg, 0, 0, nil)
}

// PlaceAvoiding implements AvoidingPlacer.
func (p *MinACLPlacer) PlaceAvoiding(cfg model.CallConfig, _ int, _ int, avoid func(dc int) bool) (int, bool) {
	best, bestACL := -1, 0.0
	for x := 0; x < p.NDCs; x++ {
		if avoid != nil && avoid(x) {
			continue
		}
		if a := p.ACLOf(cfg, x); best < 0 || a < bestACL {
			best, bestACL = x, a
		}
	}
	return best, best >= 0
}

// Release implements Placer (no accounting needed).
func (p *MinACLPlacer) Release(model.CallConfig, int, int) {}
