// Package controller implements Switchboard's real-time MP assignment
// (§5.4): when a call's first participant joins, the call is assigned to the
// DC closest to them (the first joiner predicts the majority location);
// A minutes in, the call config is frozen and checked against the
// precomputed allocation plan — the usage is tallied against the plan's
// slots, and the call is migrated when the initial choice disagrees with the
// plan. Call state transitions are persisted to a kvstore so the assignment
// survives controller restarts, which is also the write path benchmarked in
// Fig 10.
package controller

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
)

// DefaultFreeze is A, the time into a call when its config is considered
// known (§6.4 picks 300 s, where ~80% of participants have joined).
const DefaultFreeze = 300 * time.Second

// Placer decides the planned DC for a call once its config is known.
// Implementations must be safe under the controller's lock (they are only
// called while it is held).
type Placer interface {
	// Place returns the DC the plan wants for this config in this slot
	// of day, given the call's current DC. planned is false when the
	// config is not covered by the plan (the unanticipated-config case).
	Place(cfg model.CallConfig, slotOfDay, current int) (dc int, planned bool)
	// Release returns a previously placed call's slot to the plan.
	Release(cfg model.CallConfig, slotOfDay, dc int)
}

// Predictor forecasts a recurring call's configuration before participants
// join (§8). Implementations are consulted at call start for calls carrying
// a series ID; a confident prediction lets the controller place the call at
// its planned DC immediately, avoiding the migration at freeze time.
type Predictor interface {
	// PredictConfig returns the expected config of the series' next
	// instance, and whether a usable prediction exists.
	PredictConfig(seriesID uint64, at time.Time) (model.CallConfig, bool)
}

// Stats summarizes controller activity.
type Stats struct {
	// Started counts calls assigned on first join.
	Started int64
	// Frozen counts calls whose config became known.
	Frozen int64
	// Migrated counts calls moved to a different DC at freeze time.
	Migrated int64
	// Unplanned counts frozen calls whose config was not in the plan.
	Unplanned int64
	// Ended counts completed calls.
	Ended int64
	// Predicted counts calls placed from a series-config prediction at
	// start time (§8 extension).
	Predicted int64
	// FrozenRecurring / MigratedRecurring restrict the freeze and
	// migration counters to recurring (series) calls, where prediction
	// can help.
	FrozenRecurring   int64
	MigratedRecurring int64
}

// RecurringMigrationRate returns MigratedRecurring/FrozenRecurring.
func (s Stats) RecurringMigrationRate() float64 {
	if s.FrozenRecurring == 0 {
		return 0
	}
	return float64(s.MigratedRecurring) / float64(s.FrozenRecurring)
}

// MigrationRate returns Migrated/Frozen.
func (s Stats) MigrationRate() float64 {
	if s.Frozen == 0 {
		return 0
	}
	return float64(s.Migrated) / float64(s.Frozen)
}

// Config parameterizes a Controller.
type Config struct {
	// World supplies DC lookup for the first-joiner heuristic.
	World *geo.World
	// Placer supplies the planned placement; nil means "always keep the
	// initial assignment" (a pure locality controller).
	Placer Placer
	// Store, when non-nil, receives call-state writes (one HSET per
	// transition). Each worker goroutine must use its own Store client;
	// the controller serializes writes through one.
	Store *kvstore.Client
	// Freeze is A; zero means DefaultFreeze.
	Freeze time.Duration
	// Predictor, when non-nil, supplies config predictions for recurring
	// calls at start time (§8 extension).
	Predictor Predictor
}

// Controller is the real-time MP selector. Safe for concurrent use.
type Controller struct {
	world     *geo.World
	placer    Placer
	store     *kvstore.Client
	freeze    time.Duration
	predictor Predictor

	mu    sync.Mutex
	calls map[uint64]*callState
	stats Stats
}

type callState struct {
	dc      int
	slot    int
	series  uint64
	cfg     model.CallConfig
	planned bool
	frozen  bool
}

// New returns a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("controller: World is required")
	}
	if cfg.Freeze == 0 {
		cfg.Freeze = DefaultFreeze
	}
	return &Controller{
		world:     cfg.World,
		placer:    cfg.Placer,
		store:     cfg.Store,
		freeze:    cfg.Freeze,
		predictor: cfg.Predictor,
		calls:     make(map[uint64]*callState),
	}, nil
}

// Freeze returns the configured config-freeze delay A.
func (c *Controller) Freeze() time.Duration { return c.freeze }

// CallStarted assigns a new call to the DC closest to its first joiner
// (within the joiner's region, as the service does) and returns the DC ID.
func (c *Controller) CallStarted(id uint64, firstJoiner geo.CountryCode, at time.Time) (int, error) {
	return c.CallStartedWithSeries(id, firstJoiner, 0, at)
}

// CallStartedWithSeries is CallStarted for a call known to belong to a
// recurring meeting series. When a Predictor is configured and yields a
// prediction, the call is placed for the predicted config immediately (§8),
// which avoids a migration at freeze time if the prediction holds.
func (c *Controller) CallStartedWithSeries(id uint64, firstJoiner geo.CountryCode, seriesID uint64, at time.Time) (int, error) {
	dc := c.world.NearestDC(firstJoiner, true)
	if dc < 0 {
		dc = c.world.NearestDC(firstJoiner, false)
	}
	if dc < 0 {
		return -1, fmt.Errorf("controller: no DC for country %q", firstJoiner)
	}
	predicted := false
	if seriesID != 0 && c.predictor != nil {
		if cfg, ok := c.predictor.PredictConfig(seriesID, at); ok && len(cfg.Spread) > 0 {
			if target := c.placeFor(cfg, at, dc); target >= 0 {
				dc = target
				predicted = true
			}
		}
	}
	c.mu.Lock()
	if _, dup := c.calls[id]; dup {
		c.mu.Unlock()
		return -1, fmt.Errorf("controller: call %d already started", id)
	}
	c.calls[id] = &callState{dc: dc, slot: model.SlotOfDay(at), series: seriesID}
	c.stats.Started++
	if predicted {
		c.stats.Predicted++
	}
	c.mu.Unlock()
	c.persist(id, "dc", strconv.Itoa(dc))
	return dc, nil
}

// placeFor asks where a call of the given (predicted) config would be
// hosted, without debiting plan slots (the real debit happens at freeze).
func (c *Controller) placeFor(cfg model.CallConfig, at time.Time, current int) int {
	if c.placer != nil {
		if dc, ok := c.placer.Place(cfg, model.SlotOfDay(at), current); ok {
			// Immediately return the slot: the freeze-time Place
			// will take it for real.
			c.placer.Release(cfg, model.SlotOfDay(at), dc)
			return dc
		}
	}
	if maj, _ := cfg.Spread.Majority(); maj != "" {
		return c.world.NearestDC(maj, true)
	}
	return -1
}

// ConfigKnown freezes the call's config (A into the call), reconciles the
// call against the allocation plan, and returns the (possibly new) DC and
// whether the call migrated.
func (c *Controller) ConfigKnown(id uint64, cfg model.CallConfig, at time.Time) (dc int, migrated bool, err error) {
	c.mu.Lock()
	st, ok := c.calls[id]
	if !ok {
		c.mu.Unlock()
		return -1, false, fmt.Errorf("controller: unknown call %d", id)
	}
	if st.frozen {
		c.mu.Unlock()
		return st.dc, false, nil
	}
	st.frozen = true
	st.cfg = cfg
	st.slot = model.SlotOfDay(at)
	c.stats.Frozen++
	if st.series != 0 {
		c.stats.FrozenRecurring++
	}

	target := st.dc
	if c.placer != nil {
		planned, inPlan := c.placer.Place(cfg, st.slot, st.dc)
		if inPlan {
			target = planned
			st.planned = true
		} else {
			c.stats.Unplanned++
			// Unanticipated config: host at the closest DC to the
			// majority of participants (§5.4(b), last paragraph).
			if maj, _ := cfg.Spread.Majority(); maj != "" {
				if closest := c.world.NearestDC(maj, true); closest >= 0 {
					target = closest
				}
			}
		}
	}
	if target != st.dc {
		st.dc = target
		c.stats.Migrated++
		if st.series != 0 {
			c.stats.MigratedRecurring++
		}
		migrated = true
	}
	dc = st.dc
	c.mu.Unlock()
	c.persist(id, "config", cfg.Key())
	if migrated {
		c.persist(id, "dc", strconv.Itoa(dc))
	}
	return dc, migrated, nil
}

// CallEnded releases the call's state and returns its plan slot if any.
func (c *Controller) CallEnded(id uint64) error {
	c.mu.Lock()
	st, ok := c.calls[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("controller: unknown call %d", id)
	}
	delete(c.calls, id)
	c.stats.Ended++
	if st.planned && c.placer != nil {
		c.placer.Release(st.cfg, st.slot, st.dc)
	}
	c.mu.Unlock()
	c.persist(id, "state", "ended")
	return nil
}

// ActiveCalls returns the number of in-flight calls.
func (c *Controller) ActiveCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.calls)
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Controller) persist(id uint64, field, value string) {
	if c.store == nil {
		return
	}
	// Best effort: the store is an availability optimization, not the
	// source of truth for in-flight decisions.
	_ = c.store.HSet("call:"+strconv.FormatUint(id, 10), field, value)
}

// PlanPlacer tracks remaining per-DC slots of an allocation plan
// (Alloc[t][c][x]) and serves Place/Release with §5.4's semantics: prefer
// the current DC when the plan still has room there, otherwise the
// lowest-ACL DC with room, otherwise the DC with the most headroom.
type PlanPlacer struct {
	mu    sync.Mutex
	slots []map[string][]float64 // [planSlot][configKey] -> remaining per DC
	nT    int
	acl   map[string][]float64 // configKey -> per-DC ACL (for preference order)
}

// NewPlanPlacer indexes an allocation plan. configs must match alloc's
// second dimension; aclOf returns the per-DC ACL used to order preferences.
func NewPlanPlacer(configs []model.CallConfig, alloc [][][]float64, aclOf func(cfg model.CallConfig, dc int) float64, nDCs int) *PlanPlacer {
	p := &PlanPlacer{nT: len(alloc), acl: make(map[string][]float64)}
	p.slots = make([]map[string][]float64, len(alloc))
	for t := range alloc {
		p.slots[t] = make(map[string][]float64)
		for c, cfg := range configs {
			row := make([]float64, len(alloc[t][c]))
			copy(row, alloc[t][c])
			var any bool
			for _, v := range row {
				if v > 0 {
					any = true
					break
				}
			}
			if any {
				p.slots[t][cfg.Key()] = row
			}
		}
	}
	for _, cfg := range configs {
		key := cfg.Key()
		if _, done := p.acl[key]; done {
			continue
		}
		a := make([]float64, nDCs)
		for x := 0; x < nDCs; x++ {
			a[x] = aclOf(cfg, x)
		}
		p.acl[key] = a
	}
	return p
}

// planSlot maps a slot of day onto the plan's (possibly coarsened) slots.
func (p *PlanPlacer) planSlot(slotOfDay int) int {
	if p.nT == 0 {
		return 0
	}
	s := slotOfDay * p.nT / model.SlotsPerDay
	if s >= p.nT {
		s = p.nT - 1
	}
	return s
}

// Place implements Placer.
func (p *PlanPlacer) Place(cfg model.CallConfig, slotOfDay, current int) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := cfg.Key()
	row, ok := p.slots[p.planSlot(slotOfDay)][key]
	if !ok {
		return current, false
	}
	// Keep the call where it is if the plan has room there.
	if current >= 0 && current < len(row) && row[current] >= 1 {
		row[current]--
		return current, true
	}
	// Otherwise the lowest-ACL DC with remaining room.
	acl := p.acl[key]
	best := -1
	for x, rem := range row {
		if rem >= 1 && (best < 0 || acl[x] < acl[best]) {
			best = x
		}
	}
	if best >= 0 {
		row[best]--
		return best, true
	}
	// Plan exhausted for this config in this slot: fall back to the DC
	// with the largest fractional remainder, keeping the tally honest.
	bestRem := 0.0
	for x, rem := range row {
		if rem > bestRem {
			best, bestRem = x, rem
		}
	}
	if best >= 0 {
		row[best] = 0
		return best, true
	}
	return current, false
}

// Release implements Placer.
func (p *PlanPlacer) Release(cfg model.CallConfig, slotOfDay, dc int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if row, ok := p.slots[p.planSlot(slotOfDay)][cfg.Key()]; ok && dc >= 0 && dc < len(row) {
		row[dc]++
	}
}

// MinACLPlacer places every config at its minimum-ACL DC — the
// locality-first policy expressed as a Placer, used for the §6.4 migration
// comparison.
type MinACLPlacer struct {
	ACLOf func(cfg model.CallConfig, dc int) float64
	NDCs  int
}

// Place implements Placer.
func (p *MinACLPlacer) Place(cfg model.CallConfig, _ int, _ int) (int, bool) {
	best, bestACL := -1, 0.0
	for x := 0; x < p.NDCs; x++ {
		if a := p.ACLOf(cfg, x); best < 0 || a < bestACL {
			best, bestACL = x, a
		}
	}
	return best, best >= 0
}

// Release implements Placer (no accounting needed).
func (p *MinACLPlacer) Release(model.CallConfig, int, int) {}
