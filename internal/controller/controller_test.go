package controller

import (
	"context"
	"net"
	"testing"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
	"switchboard/internal/trace"
)

var world = geo.DefaultWorld()

func aclOf(cfg model.CallConfig, dc int) float64 { return cfg.ACL(world, dc) }

func newController(t *testing.T, placer Placer) *Controller {
	t.Helper()
	c, err := New(Config{World: world, Placer: placer})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func cfgOf(m model.MediaType, counts map[geo.CountryCode]int) model.CallConfig {
	return model.CallConfig{Spread: model.NewSpread(counts), Media: m}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing world should error")
	}
	c, err := New(Config{World: world})
	if err != nil {
		t.Fatal(err)
	}
	if c.Freeze() != DefaultFreeze {
		t.Errorf("freeze = %v, want default", c.Freeze())
	}
}

func TestFirstJoinerAssignment(t *testing.T) {
	c := newController(t, nil)
	now := time.Now()
	dc, err := c.CallStarted(context.Background(), 1, "JP", now)
	if err != nil {
		t.Fatal(err)
	}
	if world.DCs()[dc].Name != "tokyo" {
		t.Errorf("JP first joiner assigned to %s, want tokyo", world.DCs()[dc].Name)
	}
	if _, err := c.CallStarted(context.Background(), 1, "JP", now); err == nil {
		t.Error("duplicate call ID should error")
	}
	if _, err := c.CallStarted(context.Background(), 2, "ZZ", now); err == nil {
		t.Error("unknown country should error")
	}
}

func TestConfigKnownNoPlacerKeepsDC(t *testing.T) {
	c := newController(t, nil)
	now := time.Now()
	dc0, _ := c.CallStarted(context.Background(), 1, "JP", now)
	dc, migrated, err := c.ConfigKnown(context.Background(), 1, cfgOf(model.Video, map[geo.CountryCode]int{"JP": 3}), now)
	if err != nil || migrated || dc != dc0 {
		t.Fatalf("got dc=%d migrated=%v err=%v, want keep %d", dc, migrated, err, dc0)
	}
	// Second freeze is idempotent.
	dc2, migrated2, err := c.ConfigKnown(context.Background(), 1, cfgOf(model.Audio, nil), now)
	if err != nil || migrated2 || dc2 != dc {
		t.Fatal("second ConfigKnown should be a no-op")
	}
	if err := c.CallEnded(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.CallEnded(context.Background(), 1); err == nil {
		t.Error("double end should error")
	}
	if _, _, err := c.ConfigKnown(context.Background(), 99, cfgOf(model.Audio, nil), now); err == nil {
		t.Error("unknown call should error")
	}
	st := c.Stats()
	if st.Started != 1 || st.Frozen != 1 || st.Migrated != 0 || st.Ended != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMinACLPlacerMigration(t *testing.T) {
	placer := &MinACLPlacer{ACLOf: aclOf, NDCs: len(world.DCs())}
	c := newController(t, placer)
	now := time.Now()
	// First joiner in Japan but the majority turns out Indonesian: the
	// min-ACL DC is not tokyo, so the call must migrate (the §5.4(c)
	// example).
	c.CallStarted(context.Background(), 1, "JP", now)
	cfg := cfgOf(model.Video, map[geo.CountryCode]int{"JP": 3, "ID": 5})
	dc, migrated, err := c.ConfigKnown(context.Background(), 1, cfg, now)
	if err != nil {
		t.Fatal(err)
	}
	if !migrated {
		t.Error("expected migration for ID-majority call started in JP")
	}
	best := 0
	for x := range world.DCs() {
		if aclOf(cfg, x) < aclOf(cfg, best) {
			best = x
		}
	}
	if dc != best {
		t.Errorf("migrated to %d, want min-ACL %d", dc, best)
	}
	// A JP-majority call stays put.
	c.CallStarted(context.Background(), 2, "JP", now)
	_, migrated, _ = c.ConfigKnown(context.Background(), 2, cfgOf(model.Audio, map[geo.CountryCode]int{"JP": 4}), now)
	if migrated {
		t.Error("JP-majority call should not migrate from tokyo")
	}
}

func TestPlanPlacerSlotAccounting(t *testing.T) {
	cfg := cfgOf(model.Audio, map[geo.CountryCode]int{"JP": 2})
	var tokyo, hk int
	for _, dc := range world.DCs() {
		switch dc.Name {
		case "tokyo":
			tokyo = dc.ID
		case "hong-kong":
			hk = dc.ID
		}
	}
	// One plan slot; 2 calls at tokyo, 1 at hong-kong.
	alloc := [][][]float64{{make([]float64, len(world.DCs()))}}
	alloc[0][0][tokyo] = 2
	alloc[0][0][hk] = 1
	p := NewPlanPlacer([]model.CallConfig{cfg}, alloc, aclOf, len(world.DCs()))

	// First two placements keep the tokyo-assigned call at tokyo.
	for i := 0; i < 2; i++ {
		dc, ok := p.Place(cfg, 0, tokyo)
		if !ok || dc != tokyo {
			t.Fatalf("placement %d: dc=%d ok=%v", i, dc, ok)
		}
	}
	// Tokyo exhausted: the third goes to hong-kong.
	dc, ok := p.Place(cfg, 0, tokyo)
	if !ok || dc != hk {
		t.Fatalf("third placement dc=%d ok=%v, want hong-kong", dc, ok)
	}
	// All slots gone: the config is treated as unplanned (the realtime
	// path then hosts at the majority's closest DC).
	if _, ok := p.Place(cfg, 0, tokyo); ok {
		t.Fatal("fully exhausted plan should report unplanned")
	}
	// Release one tokyo slot; next placement reclaims it.
	p.Release(cfg, 0, tokyo)
	dc, ok = p.Place(cfg, 0, tokyo)
	if !ok || dc != tokyo {
		t.Fatalf("after release dc=%d ok=%v, want tokyo", dc, ok)
	}
	// Unknown config is not in the plan.
	if _, ok := p.Place(cfgOf(model.Video, map[geo.CountryCode]int{"US": 9}), 0, tokyo); ok {
		t.Error("unknown config should be unplanned")
	}
}

func TestUnplannedConfigGoesToMajorityClosest(t *testing.T) {
	p := NewPlanPlacer(nil, [][][]float64{{}}, aclOf, len(world.DCs()))
	c := newController(t, p)
	now := time.Now()
	c.CallStarted(context.Background(), 1, "JP", now)
	cfg := cfgOf(model.Audio, map[geo.CountryCode]int{"IN": 5, "JP": 1})
	dc, migrated, err := c.ConfigKnown(context.Background(), 1, cfg, now)
	if err != nil {
		t.Fatal(err)
	}
	if !migrated {
		t.Error("IN-majority unplanned call should migrate from tokyo")
	}
	if world.DCs()[dc].Name != "pune" {
		t.Errorf("unplanned call went to %s, want pune", world.DCs()[dc].Name)
	}
	if c.Stats().Unplanned != 1 {
		t.Errorf("unplanned = %d", c.Stats().Unplanned)
	}
}

// stubPredictor predicts a fixed config for one series.
type stubPredictor struct {
	series uint64
	cfg    model.CallConfig
}

func (p *stubPredictor) PredictConfig(seriesID uint64, _ time.Time) (model.CallConfig, bool) {
	if seriesID == p.series {
		return p.cfg, true
	}
	return model.CallConfig{}, false
}

func TestPredictivePlacementAvoidsMigration(t *testing.T) {
	// The §5.4(c) example: first joiner in Japan, majority in Indonesia.
	// Without prediction the call migrates at freeze; with an accurate
	// prediction it is placed right the first time.
	placer := &MinACLPlacer{ACLOf: aclOf, NDCs: len(world.DCs())}
	cfg := cfgOf(model.Video, map[geo.CountryCode]int{"JP": 3, "ID": 5})
	now := time.Now()

	plain := newController(t, placer)
	plain.CallStartedWithSeries(context.Background(), 1, "JP", 42, now)
	_, migrated, _ := plain.ConfigKnown(context.Background(), 1, cfg, now)
	if !migrated {
		t.Fatal("baseline should migrate")
	}
	st := plain.Stats()
	if st.FrozenRecurring != 1 || st.MigratedRecurring != 1 || st.Predicted != 0 {
		t.Errorf("baseline stats = %+v", st)
	}

	predictive, err := New(Config{
		World:     world,
		Placer:    placer,
		Predictor: &stubPredictor{series: 42, cfg: cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	dc0, err := predictive.CallStartedWithSeries(context.Background(), 1, "JP", 42, now)
	if err != nil {
		t.Fatal(err)
	}
	dcFinal, migrated, err := predictive.ConfigKnown(context.Background(), 1, cfg, now)
	if err != nil {
		t.Fatal(err)
	}
	if migrated || dc0 != dcFinal {
		t.Errorf("predicted placement still migrated: %d -> %d", dc0, dcFinal)
	}
	st = predictive.Stats()
	if st.Predicted != 1 {
		t.Errorf("Predicted = %d, want 1", st.Predicted)
	}
	if st.RecurringMigrationRate() != 0 {
		t.Errorf("recurring migration rate = %g", st.RecurringMigrationRate())
	}
	// A non-series call never consults the predictor.
	if _, err := predictive.CallStarted(context.Background(), 2, "JP", now); err != nil {
		t.Fatal(err)
	}
	if predictive.Stats().Predicted != 1 {
		t.Error("predictor fired for an ad-hoc call")
	}
}

func TestBuildEventsOrdering(t *testing.T) {
	start := time.Date(2022, 9, 5, 9, 0, 0, 0, time.UTC)
	recs := []*model.CallRecord{
		{
			ID: 2, Start: start.Add(time.Minute), Duration: 10 * time.Minute,
			Legs: []model.LegRecord{
				{Participant: 1, Country: "US"},
				{Participant: 2, Country: "CA", JoinOffset: 2 * time.Minute},
				{Participant: 3, Country: "US", JoinOffset: 20 * time.Minute}, // after end: dropped
			},
		},
		{
			ID: 1, Start: start, Duration: 2 * time.Minute, // shorter than freeze
			Legs: []model.LegRecord{{Participant: 4, Country: "JP"}},
		},
	}
	events := BuildEvents(recs, 5*time.Minute)
	if len(events) != 7 {
		t.Fatalf("got %d events, want 7", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Time.Before(events[i-1].Time) {
			t.Fatal("events not time-ordered")
		}
	}
	// Call 1's freeze must precede its end despite freeze > duration.
	var frozeAt, endedAt int
	for i, e := range events {
		if e.CallID == 1 && e.Kind == EventFreeze {
			frozeAt = i
		}
		if e.CallID == 1 && e.Kind == EventEnd {
			endedAt = i
		}
	}
	if frozeAt >= endedAt {
		t.Error("freeze after end for a short call")
	}
}

func TestReplayMigrationRateSmall(t *testing.T) {
	// End-to-end §6.4: replay a synthetic day with the min-ACL placer;
	// the migration rate should be small (first-joiner locality) but
	// nonzero.
	cfg := trace.DefaultConfig()
	cfg.Days = 1
	cfg.CallsPerDay = 2500
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := g.GenerateAll()
	events := BuildEvents(recs, DefaultFreeze)
	c := newController(t, &MinACLPlacer{ACLOf: aclOf, NDCs: len(world.DCs())})
	stats, err := c.Replay(events)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frozen == 0 || stats.Ended == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	rate := stats.MigrationRate()
	if rate <= 0 || rate > 0.20 {
		t.Errorf("migration rate = %.3f, want small nonzero (~0.015-0.1)", rate)
	}
	if c.ActiveCalls() != 0 {
		t.Errorf("%d calls leaked after replay", c.ActiveCalls())
	}
}

func TestPeakEventRate(t *testing.T) {
	start := time.Date(2022, 9, 5, 0, 0, 0, 0, time.UTC)
	var events []Event
	// 10 events in slot 0, 2 in slot 3.
	for i := 0; i < 10; i++ {
		events = append(events, Event{Time: start.Add(time.Duration(i) * time.Second)})
	}
	events = append(events, Event{Time: start.Add(95 * time.Minute)}, Event{Time: start.Add(96 * time.Minute)})
	got := PeakEventRate(events)
	want := 10.0 / 1800
	if got != want {
		t.Errorf("peak rate = %g, want %g", got, want)
	}
	if PeakEventRate(nil) != 0 {
		t.Error("empty events should have zero rate")
	}
}

func TestControllerPersistsToStore(t *testing.T) {
	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	client, err := kvstore.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	c, err := New(Config{World: world, Store: client})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	dc, _ := c.CallStarted(context.Background(), 42, "DE", now)
	reader, err := kvstore.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	v, err := reader.HGet("call:42", "dc")
	if err != nil {
		t.Fatal(err)
	}
	if v == "" || v != itoa(dc) {
		t.Errorf("persisted dc = %q, want %d", v, dc)
	}
	c.ConfigKnown(context.Background(), 42, cfgOf(model.Audio, map[geo.CountryCode]int{"DE": 2}), now)
	if v, err := reader.HGet("call:42", "config"); err != nil || v != "audio|DE:2" {
		t.Errorf("persisted config = %q, %v", v, err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestBenchThroughputSmall(t *testing.T) {
	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()

	cfg := trace.DefaultConfig()
	cfg.Days = 1
	cfg.CallsPerDay = 300
	g, _ := trace.NewGenerator(cfg)
	events := BuildEvents(g.GenerateAll(), DefaultFreeze)

	if _, err := BenchThroughput(l.Addr().String(), 0, events, 0); err == nil {
		t.Error("zero workers should error")
	}
	res1, err := BenchThroughput(l.Addr().String(), 1, events, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res1.EventsPerSec <= 0 || res1.Events != len(events) {
		t.Fatalf("res = %+v", res1)
	}
	if res1.MinWrite <= 0 || res1.MaxWrite < res1.MinWrite {
		t.Errorf("write latencies: min=%v max=%v", res1.MinWrite, res1.MaxWrite)
	}
	res4, err := BenchThroughput(l.Addr().String(), 4, events, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Loopback throughput should not collapse with more workers.
	if res4.EventsPerSec < res1.EventsPerSec/4 {
		t.Errorf("4 workers %g ev/s vs 1 worker %g ev/s", res4.EventsPerSec, res1.EventsPerSec)
	}
}
