package controller

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
	"switchboard/internal/obs"
)

// TestControllerMetricsAndTrace drives a full call lifecycle plus a DC
// failover and checks both the metric families and the decision ring.
func TestControllerMetricsAndTrace(t *testing.T) {
	var tokyo, hk int
	for _, dc := range world.DCs() {
		switch dc.Name {
		case "tokyo":
			tokyo = dc.ID
		case "hong-kong":
			hk = dc.ID
		}
	}
	cfg := cfgOf(model.Audio, map[geo.CountryCode]int{"JP": 2})
	alloc := [][][]float64{{make([]float64, len(world.DCs()))}}
	alloc[0][0][hk] = 2 // plan wants hong-kong: freezing migrates
	placer := NewPlanPlacer([]model.CallConfig{cfg}, alloc, aclOf, len(world.DCs()))

	reg := obs.NewRegistry()
	ring := obs.NewDecisionRing(16)
	ctrl, err := New(Config{
		World:     world,
		Placer:    placer,
		Metrics:   NewMetrics(reg),
		Decisions: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()

	if dc, err := ctrl.CallStarted(context.Background(), 1, "JP", now); err != nil || dc != tokyo {
		t.Fatalf("started at %d, %v", dc, err)
	}
	if dc, migrated, err := ctrl.ConfigKnown(context.Background(), 1, cfg, now); err != nil || !migrated || dc != hk {
		t.Fatalf("frozen at %d migrated=%v, %v", dc, migrated, err)
	}
	if _, err := ctrl.CallStarted(context.Background(), 2, "JP", now); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.CallEnded(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := ctrl.FailDC(context.Background(), hk); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"sb_controller_calls_started_total 2",
		"sb_controller_calls_frozen_total 1",
		"sb_controller_calls_migrated_total 1",
		"sb_controller_calls_ended_total 1",
		"sb_controller_calls_failed_over_total 1",
		"sb_controller_active_calls 1",
		// Three timed placements: two starts and one freeze.
		"sb_controller_place_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// The decision ring holds start, freeze (plan, migrated), start, and
	// failover records, newest first.
	snap := ring.Snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("ring holds %d decisions, want 4", len(snap))
	}
	if d := snap[0]; d.Kind != "failover" || d.Call != 1 || d.Prev != hk || d.Reason != "drain-failed-dc" {
		t.Errorf("newest decision = %+v, want failover of call 1 off hong-kong", d)
	}
	var freeze obs.Decision
	for _, d := range snap {
		if d.Kind == "freeze" {
			freeze = d
		}
	}
	if freeze.Call != 1 || !freeze.Migrated || freeze.Reason != "plan" ||
		freeze.Prev != tokyo || freeze.Chosen != hk || freeze.Config == "" {
		t.Errorf("freeze decision = %+v", freeze)
	}
	for _, d := range snap {
		if d.Kind == "start" && (d.Reason != "first-joiner" || d.Prev != -1) {
			t.Errorf("start decision = %+v", d)
		}
	}
}

// TestDegradedMetrics checks the persist-path telemetry across a store
// outage: the degraded transition counter, the journal depth gauge, and the
// replay counter.
func TestDegradedMetrics(t *testing.T) {
	srv, l := startStore(t)
	addr := l.Addr().String()
	client, err := kvstore.DialOptions(addr, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	ctrl, err := New(Config{
		World:         world,
		Store:         client,
		Metrics:       m,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	now := time.Now()
	if _, err := ctrl.CallStarted(context.Background(), 1, "JP", now); err != nil {
		t.Fatal(err)
	}
	if m.PersistSeconds.Count() == 0 {
		t.Error("healthy persist not timed")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := ctrl.CallStarted(context.Background(), 2, "DE", now); err != nil {
		t.Fatal(err)
	}
	if m.Degraded.Value() != 1 {
		t.Errorf("degraded transitions = %d, want 1", m.Degraded.Value())
	}
	if m.JournalDepth.Value() == 0 {
		t.Error("journal depth gauge still 0 while degraded")
	}

	srv2 := kvstore.NewServer()
	var l2 net.Listener
	for i := 0; ; i++ {
		l2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 50 {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	go srv2.Serve(l2)
	defer srv2.Close()

	drainJournal(t, ctrl)
	if m.Replayed.Value() == 0 {
		t.Error("replay counter still 0 after drain")
	}
	if m.JournalDepth.Value() != 0 {
		t.Errorf("journal depth gauge = %v after drain, want 0", m.JournalDepth.Value())
	}
}

// TestObsOverheadOnPlacement is the tentpole's overhead criterion: full
// telemetry (metrics + decision ring) must cost well under 5% on the
// placement hot path. Benchmark noise at nanosecond scale dwarfs 5%, so the
// assertion uses generous slack (1.5x) — a regression that reintroduces
// allocation or locking on the sink path shows up as 2-10x, not 1.1x.
func TestObsOverheadOnPlacement(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison; skipped in -short")
	}
	run := func(withObs bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			cfg := Config{World: world}
			if withObs {
				cfg.Metrics = NewMetrics(obs.NewRegistry())
				cfg.Decisions = obs.NewDecisionRing(obs.DefaultRingCapacity)
			}
			ctrl, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			now := time.Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := uint64(i + 1)
				if _, err := ctrl.CallStarted(context.Background(), id, "JP", now); err != nil {
					b.Fatal(err)
				}
				if err := ctrl.CallEnded(context.Background(), id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	base := run(false)
	// Tracing off (no span in the context) and telemetry off must not add
	// allocations over the pre-tracing baseline of 1 alloc/op (the call
	// record). A context.Value miss, a span name built eagerly, or an attr
	// slice on the off path all show up here as a hard failure, allocation
	// counts being noise-free.
	if allocs := base.AllocsPerOp(); allocs > 1 {
		t.Errorf("uninstrumented placement costs %d allocs/op, want <= 1 (tracing-off path must not allocate)", allocs)
	}
	instrumented := run(true)
	if base.NsPerOp() <= 0 {
		t.Skip("benchmark did not run long enough to measure")
	}
	ratio := float64(instrumented.NsPerOp()) / float64(base.NsPerOp())
	overhead := instrumented.NsPerOp() - base.NsPerOp()
	t.Logf("placement: %v ns/op bare, %v ns/op instrumented (ratio %.3f, +%d ns)",
		base.NsPerOp(), instrumented.NsPerOp(), ratio, overhead)
	// Telemetry must be sink-cheap in absolute terms: with striped lock-free
	// cells the full bundle (counters, gauge, histogram, decision ring, two
	// clock reads) measures ~200 ns/op on the reference container. The gate
	// is 3x that — far below what any locking or allocation regression costs
	// (microseconds), but tight enough to catch one outright.
	if overhead > 600 {
		t.Errorf("telemetry costs +%d ns/op (%.2fx), want <= 600 ns; hot-path sinks regressed", overhead, ratio)
	}
	// And allocation-free: the metrics/ring path must add zero allocs over
	// the bare path's call record. Alloc counts are noise-free, so this is
	// an exact gate.
	if got, want := instrumented.AllocsPerOp(), base.AllocsPerOp(); got > want {
		t.Errorf("instrumented placement costs %d allocs/op vs %d bare; telemetry sinks must not allocate", got, want)
	}
}
