package controller

import (
	"context"
	"strconv"
	"testing"
	"time"

	"switchboard/internal/faults"
	"switchboard/internal/kvstore"
	"switchboard/internal/obs"
)

func dialStore(t *testing.T, addr string) *kvstore.Client {
	t.Helper()
	c, err := kvstore.DialOptions(addr, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func startElector(t *testing.T, e *Elector) {
	t.Helper()
	go e.Run()
	t.Cleanup(func() {
		e.Stop()
		<-e.Done()
	})
}

func await(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestElectorHandoffAndFencing drives the full leadership story: A leads and
// its fenced writes land; B follows with a hint pointing at A; A resigns and
// B takes over with a bumped epoch; A's stale writes are fenced out of the
// store and surface in its Stats rather than corrupting B's state.
func TestElectorHandoffAndFencing(t *testing.T) {
	srv, l := startStore(t)
	defer srv.Close()
	addr := l.Addr().String()

	newCtrl := func() *Controller {
		c, err := New(Config{World: world, Store: dialStore(t, addr)})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ctrlA, ctrlB := newCtrl(), newCtrl()
	reg := obs.NewRegistry()
	newElector := func(id string, ctrl *Controller) *Elector {
		return NewElector(ElectorConfig{
			Store: dialStore(t, addr),
			ID:    id,
			TTL:   300 * time.Millisecond,
			Renew: 100 * time.Millisecond,
			OnLead: func(epoch int64) {
				ctrl.SetLease(DefaultLeaseKey, epoch)
				_, _ = ctrl.ReplayJournal(context.Background())
			},
			OnLose:  ctrl.ClearLease,
			Metrics: NewElectorMetrics(reg),
		})
	}
	elA := newElector("ctrl-A", ctrlA)
	startElector(t, elA)
	await(t, "A leading", elA.IsLeader)
	if elA.Epoch() != 1 {
		t.Fatalf("first leadership epoch = %d, want 1", elA.Epoch())
	}

	elB := newElector("ctrl-B", ctrlB)
	startElector(t, elB)
	await(t, "B observing A", func() bool { return elB.LeaderHint() == "ctrl-A" })
	if elB.IsLeader() {
		t.Fatal("B must follow while A's lease is live")
	}

	// A's writes carry epoch 1 and land.
	if _, err := ctrlA.CallStarted(context.Background(), 1, "JP", time.Now()); err != nil {
		t.Fatal(err)
	}
	rdr := dialStore(t, addr)
	if dc, err := rdr.HGet("call:1", "dc"); err != nil || dc == "" {
		t.Fatalf("leader write missing: %q, %v", dc, err)
	}

	// Orderly handoff: A resigns, B must take over within a renew interval
	// or two (not a full TTL) and the epoch must move.
	elA.Stop()
	<-elA.Done()
	await(t, "B taking over", elB.IsLeader)
	if elB.Epoch() != 2 {
		t.Fatalf("takeover epoch = %d, want 2", elB.Epoch())
	}

	// A kept its controller running (it does not know it was deposed in
	// this scenario — OnLose cleared the fence, so re-arm A's stale epoch
	// to model in-flight writes from before the loss).
	ctrlA.SetLease(DefaultLeaseKey, 1)
	if _, err := ctrlA.CallStarted(context.Background(), 2, "JP", time.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := rdr.HGet("call:2", "dc"); err != kvstore.ErrNil {
		t.Fatalf("stale leader's write visible in store: %v", err)
	}
	if got := ctrlA.Stats().Fenced; got != 1 {
		t.Fatalf("A fenced writes = %d, want 1", got)
	}
	// B's fenced writes (epoch 2, armed by OnLead) land fine.
	if _, err := ctrlB.CallStarted(context.Background(), 3, "JP", time.Now()); err != nil {
		t.Fatal(err)
	}
	if dc, err := rdr.HGet("call:3", "dc"); err != nil || dc == "" {
		t.Fatalf("new leader write missing: %q, %v", dc, err)
	}
}

// TestElectorRenewalKeepsEpoch pins that a healthy leader's renewals never
// bump the epoch — followers' fencing tokens stay comparable across renews.
func TestElectorRenewalKeepsEpoch(t *testing.T) {
	srv, l := startStore(t)
	defer srv.Close()
	reg := obs.NewRegistry()
	m := NewElectorMetrics(reg)
	el := NewElector(ElectorConfig{
		Store:   dialStore(t, l.Addr().String()),
		ID:      "ctrl-A",
		TTL:     150 * time.Millisecond,
		Renew:   30 * time.Millisecond,
		Metrics: m,
	})
	startElector(t, el)
	await(t, "leading", el.IsLeader)
	await(t, "several renewals", func() bool { return m.Renewals.Value() >= 4 })
	if el.Epoch() != 1 {
		t.Fatalf("epoch after renewals = %d, want 1", el.Epoch())
	}
	if !el.IsLeader() {
		t.Fatal("leadership flapped across renewals")
	}
}

// TestElectorStepsDownWhenStoreUnreachable: a leader that cannot renew for a
// whole TTL must stop claiming leadership (its grant may have lapsed and
// another controller may hold the lease).
func TestElectorStepsDownWhenStoreUnreachable(t *testing.T) {
	srv, l := startStore(t)
	defer srv.Close()
	proxy, err := faults.NewProxy(l.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	lost := make(chan struct{}, 1)
	el := NewElector(ElectorConfig{
		Store:  dialStore(t, proxy.Addr()),
		ID:     "ctrl-A",
		TTL:    200 * time.Millisecond,
		Renew:  50 * time.Millisecond,
		OnLose: func() { lost <- struct{}{} },
	})
	startElector(t, el)
	await(t, "leading", el.IsLeader)
	proxy.Cut()
	await(t, "stepping down", func() bool { return !el.IsLeader() })
	select {
	case <-lost:
	default:
		t.Fatal("OnLose did not fire on step-down")
	}
	// The store comes back with the lease lapsed: the elector re-acquires.
	proxy.Restore()
	await(t, "re-acquiring", el.IsLeader)
	if el.Epoch() != 1 {
		// Same owner re-acquiring after a lapse keeps the epoch (ownership
		// did not change), which is exactly why fencing keys off epochs and
		// not grant counts.
		t.Fatalf("re-acquired epoch = %d, want 1", el.Epoch())
	}
}

// TestJournalReplayIdempotent duplicates every journaled entry before the
// drain: the journal is at-least-once by design (a REPLWAIT write may already
// be applied), so replaying duplicates must converge to the same store state
// and a second drain must be a no-op.
func TestJournalReplayIdempotent(t *testing.T) {
	srv, l := startStore(t)
	defer srv.Close()
	proxy, err := faults.NewProxy(l.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	ctrl, err := New(Config{
		World:         world,
		Store:         dialStore(t, proxy.Addr()),
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	proxy.Cut()
	const calls = 20
	for i := uint64(1); i <= calls; i++ {
		if _, err := ctrl.CallStarted(context.Background(), i, "JP", time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	await(t, "journaling", func() bool { return ctrl.JournalDepth() == calls })

	// Duplicate the whole journal, as if every entry had been retried.
	ctrl.storeMu.Lock()
	ctrl.journal = append(ctrl.journal, ctrl.journal...)
	ctrl.storeMu.Unlock()

	proxy.Restore()
	if n := drainJournal(t, ctrl); n != 2*calls {
		t.Fatalf("replayed %d entries, want %d", n, 2*calls)
	}
	rdr := dialStore(t, l.Addr().String())
	for i := uint64(1); i <= calls; i++ {
		key := "call:" + strconv.FormatUint(i, 10)
		if dc, err := rdr.HGet(key, "dc"); err != nil || dc == "" {
			t.Fatalf("%s dc = %q, %v after duplicated replay", key, dc, err)
		}
		if fields, err := rdr.HGetAll(key); err != nil || len(fields) != 1 {
			t.Fatalf("%s has %d fields (%v), want exactly 1", key, len(fields), err)
		}
	}
	if ctrl.Degraded() {
		t.Fatal("still degraded after a clean drain")
	}
	if n, err := ctrl.ReplayJournal(context.Background()); n != 0 || err != nil {
		t.Fatalf("second drain = %d, %v; want a no-op", n, err)
	}
}

// TestJournalDrainDropsFencedEntries: writes journaled before a leadership
// loss must not land on the new leader's state when the store comes back —
// the drain drops them as fenced and keeps draining.
func TestJournalDrainDropsFencedEntries(t *testing.T) {
	srv, l := startStore(t)
	defer srv.Close()
	proxy, err := faults.NewProxy(l.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	ctrl, err := New(Config{
		World:         world,
		Store:         dialStore(t, proxy.Addr()),
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	admin := dialStore(t, l.Addr().String())
	epoch, err := admin.SetLease(DefaultLeaseKey, "ctrl-A", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.SetLease(DefaultLeaseKey, epoch)

	proxy.Cut()
	const calls = 5
	for i := uint64(1); i <= calls; i++ {
		if _, err := ctrl.CallStarted(context.Background(), i, "JP", time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	await(t, "journaling", func() bool { return ctrl.JournalDepth() == calls })

	// Leadership moves while the store is unreachable.
	if err := admin.DelLease(DefaultLeaseKey, "ctrl-A"); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.SetLease(DefaultLeaseKey, "ctrl-B", 10*time.Second); err != nil {
		t.Fatal(err)
	}

	proxy.Restore()
	if n := drainJournal(t, ctrl); n != 0 {
		t.Fatalf("drain replayed %d fenced entries, want 0", n)
	}
	st := ctrl.Stats()
	if st.Fenced != calls {
		t.Fatalf("fenced = %d, want %d", st.Fenced, calls)
	}
	if st.JournalDepth != 0 {
		t.Fatalf("journal depth = %d after drain", st.JournalDepth)
	}
	for i := uint64(1); i <= calls; i++ {
		key := "call:" + strconv.FormatUint(i, 10)
		if _, err := admin.HGet(key, "dc"); err != kvstore.ErrNil {
			t.Fatalf("fenced entry %s landed in the store: %v", key, err)
		}
	}
}
