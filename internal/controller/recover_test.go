package controller

import (
	"context"
	"net"
	"testing"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
)

func startRecoverStore(t *testing.T) string {
	t.Helper()
	srv := kvstore.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return l.Addr().String()
}

func dialRecover(t *testing.T, addr string) *kvstore.Client {
	t.Helper()
	c, err := kvstore.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// TestRecoverCalls pins the successor-takeover contract: a fresh controller
// on the same key prefix rebuilds exactly the in-flight calls — ended calls,
// lease keys under the prefix, foreign-shard keys, and calls it already
// knows are all left out.
func TestRecoverCalls(t *testing.T) {
	addr := startRecoverStore(t)
	const prefix = "shard/0/"
	mk := func() *Controller {
		c, err := New(Config{World: world, Store: dialRecover(t, addr), KeyPrefix: prefix, Shard: 0})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ctx := context.Background()
	now := time.Now()

	prev := mk()
	if _, err := prev.CallStarted(ctx, 1, "JP", now); err != nil {
		t.Fatal(err)
	}
	if _, err := prev.CallStarted(ctx, 2, "JP", now); err != nil {
		t.Fatal(err)
	}
	cfg := cfgOf(model.Audio, map[geo.CountryCode]int{"JP": 3})
	if _, _, err := prev.ConfigKnown(ctx, 2, cfg, now); err != nil {
		t.Fatal(err)
	}
	if _, err := prev.CallStarted(ctx, 3, "JP", now); err != nil {
		t.Fatal(err)
	}
	if err := prev.CallEnded(ctx, 3); err != nil {
		t.Fatal(err)
	}
	// Neighbors under and next to the prefix that recovery must skip: the
	// shard's own lease key and another shard's call state.
	seed := dialRecover(t, addr)
	if err := seed.Set(prefix+"leader", "node-a"); err != nil {
		t.Fatal(err)
	}
	if err := seed.HSet("shard/1/call:99", "dc", "0"); err != nil {
		t.Fatal(err)
	}

	next := mk()
	// Pre-existing knowledge wins: the successor already placed call 1 (say,
	// via journal replay) and recovery must not clobber it.
	if _, err := next.CallStarted(ctx, 1, "JP", now); err != nil {
		t.Fatal(err)
	}
	n, err := next.RecoverCalls(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d calls, want 1 (only call 2)", n)
	}
	// The recovered call keeps its lifecycle: it can be ended.
	if err := next.CallEnded(ctx, 2); err != nil {
		t.Fatalf("recovered call unusable: %v", err)
	}
	// The ended and foreign calls were not resurrected.
	if err := next.CallEnded(ctx, 3); err == nil {
		t.Fatal("ended call was resurrected by recovery")
	}
	if err := next.CallEnded(ctx, 99); err == nil {
		t.Fatal("foreign shard's call leaked into recovery")
	}
	// Recovery is idempotent once the state is known.
	if n, err = next.RecoverCalls(ctx); err != nil || n != 0 {
		t.Fatalf("second recovery = (%d, %v), want (0, nil)", n, err)
	}
}

// TestRecoverCallsKeepsFreeze: a call recovered with a persisted config is
// still frozen — re-announcing a different config must not migrate it.
func TestRecoverCallsKeepsFreeze(t *testing.T) {
	addr := startRecoverStore(t)
	mk := func() *Controller {
		c, err := New(Config{World: world, Store: dialRecover(t, addr), KeyPrefix: "shard/0/", Shard: 0})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ctx := context.Background()
	now := time.Now()
	prev := mk()
	dcBefore, err := prev.CallStarted(ctx, 7, "JP", now)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prev.ConfigKnown(ctx, 7, cfgOf(model.Audio, map[geo.CountryCode]int{"JP": 2}), now); err != nil {
		t.Fatal(err)
	}

	next := mk()
	if _, err := next.RecoverCalls(ctx); err != nil {
		t.Fatal(err)
	}
	dcAfter, migrated, err := next.ConfigKnown(ctx, 7, cfgOf(model.Video, map[geo.CountryCode]int{"US": 40}), now)
	if err != nil {
		t.Fatal(err)
	}
	if migrated || dcAfter != dcBefore {
		t.Fatalf("recovered call migrated (dc %d -> %d): freeze lost in recovery", dcBefore, dcAfter)
	}
}

func TestRecoverCallsNoStore(t *testing.T) {
	c := newController(t, nil)
	if n, err := c.RecoverCalls(context.Background()); n != 0 || err != nil {
		t.Fatalf("RecoverCalls without store = (%d, %v), want (0, nil)", n, err)
	}
}
