package controller

import (
	"time"

	"switchboard/internal/obs"
	"switchboard/internal/obs/span"
)

// Metrics is the controller's telemetry bundle. Every field is nil-safe, so
// a zero-value Metrics (telemetry off) costs one nil check per sink call on
// the hot path — measured at well under 5% of placement cost even when on
// (see TestObsOverheadOnPlacement).
type Metrics struct {
	Started    *obs.Counter
	Frozen     *obs.Counter
	Migrated   *obs.Counter
	Unplanned  *obs.Counter
	Ended      *obs.Counter
	Predicted  *obs.Counter
	FailedOver *obs.Counter
	Degraded   *obs.Counter // transitions into store-degraded mode
	Replayed   *obs.Counter
	Dropped    *obs.Counter
	// FencedWrites counts call-state writes rejected by the store's fencing
	// check — evidence this controller kept writing after losing leadership.
	FencedWrites *obs.Counter

	JournalDepth *obs.Gauge
	ActiveCalls  *obs.Gauge

	// PlaceSeconds times the placement decisions (CallStarted and
	// ConfigKnown, excluding store I/O); PersistSeconds times the store
	// write path including journaling.
	PlaceSeconds   *obs.Histogram
	PersistSeconds *obs.Histogram
}

// NewMetrics registers the controller metric families on r (nil r yields a
// usable all-nil Metrics).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Started:    r.Counter("sb_controller_calls_started_total", "Calls assigned on first join."),
		Frozen:     r.Counter("sb_controller_calls_frozen_total", "Calls whose config became known."),
		Migrated:   r.Counter("sb_controller_calls_migrated_total", "Calls moved to a different DC at freeze time."),
		Unplanned:  r.Counter("sb_controller_calls_unplanned_total", "Frozen calls whose config was not in the allocation plan."),
		Ended:      r.Counter("sb_controller_calls_ended_total", "Completed calls."),
		Predicted:  r.Counter("sb_controller_calls_predicted_total", "Calls placed from a series-config prediction at start."),
		FailedOver: r.Counter("sb_controller_calls_failed_over_total", "Live calls drained off failed DCs."),
		Degraded:   r.Counter("sb_controller_degraded_transitions_total", "Transitions into store-degraded (journaling) mode."),
		Replayed:   r.Counter("sb_controller_journal_replayed_total", "Journaled writes replayed after a reconnect."),
		Dropped:    r.Counter("sb_controller_journal_dropped_total", "Journaled writes lost to the journal cap."),
		FencedWrites: r.Counter("sb_controller_fenced_writes_total",
			"Call-state writes rejected by lease fencing after leadership loss."),
		JournalDepth: r.Gauge("sb_controller_journal_depth",
			"Buffered call-state writes awaiting replay."),
		ActiveCalls: r.Gauge("sb_controller_active_calls", "In-flight calls."),
		PlaceSeconds: r.Histogram("sb_controller_place_seconds",
			"Placement decision time (start and freeze), excluding store I/O.", nil),
		PersistSeconds: r.Histogram("sb_controller_persist_seconds",
			"Call-state persist time, including journaling when degraded.", nil),
	}
}

// observePlace records a placement-latency sample, stamping the active trace
// ID as the bucket's exemplar so a fleet scrape of a slow bucket links
// straight to the trace that landed there (sbtrace / /debug/spans?trace=).
// sp is the operation's own span (nil when tracing is off).
func (c *Controller) observePlace(sp *span.Span, secs float64) {
	if trace := sp.TraceID(); trace != 0 {
		c.metrics.PlaceSeconds.ObserveExemplar(secs, uint64(trace))
		return
	}
	c.metrics.PlaceSeconds.Observe(secs)
}

// obsStart returns the wall-clock start for a timed section, or the zero
// time when neither metrics timing nor decision tracing is enabled, keeping
// the uninstrumented hot path free of clock reads.
func (c *Controller) obsStart() time.Time {
	if c.obsOn {
		return time.Now()
	}
	return time.Time{}
}

// sinceObs converts an obsStart time into seconds (0 when timing is off).
func sinceObs(start time.Time) (time.Duration, float64) {
	if start.IsZero() {
		return 0, 0
	}
	d := time.Since(start)
	return d, d.Seconds()
}
