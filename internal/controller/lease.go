// Lease-based controller leadership. Controllers race SETLEASE on a
// well-known store key; the winner leads and renews within the TTL, the
// losers run hot — journal-replaying standbys — and watch the lease so they
// can take over the moment it lapses. Leadership changes bump the lease
// epoch, which the leader stamps onto every call-state write (see
// Controller.SetLease), so a deposed leader is fenced out of the store even
// if it keeps running.

package controller

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"switchboard/internal/kvstore"
	"switchboard/internal/obs"
	"switchboard/internal/obs/span"
)

// DefaultLeaseKey is the store key controllers race on.
const DefaultLeaseKey = "switchboard:leader"

// DefaultLeaseTTL is the default leadership lease duration. A follower takes
// over within one TTL of the leader's last renewal, so this bounds the
// leaderless window after a controller crash.
const DefaultLeaseTTL = 3 * time.Second

// ElectorConfig parameterizes an Elector.
type ElectorConfig struct {
	// Store is the elector's own kvstore client. It must not be shared with
	// the controller's write path: election probes must still go through
	// when the data path is saturated, and the elector mutates no fence
	// state on it.
	Store *kvstore.Client
	// Key is the lease key; empty means DefaultLeaseKey.
	Key string
	// ID identifies this controller as the lease owner (host:port, pod
	// name...). Required.
	ID string
	// TTL is the lease duration; zero means DefaultLeaseTTL.
	TTL time.Duration
	// Renew is the renewal interval; zero means TTL/3. It must be
	// comfortably under TTL or leadership flaps on every scheduling hiccup.
	Renew time.Duration
	// OnLead runs once per leadership acquisition with the granted epoch
	// (typically Controller.SetLease plus a journal replay). Called from
	// the elector goroutine.
	OnLead func(epoch int64)
	// OnLose runs once per leadership loss (lease observed under another
	// owner, or renewals failing past a TTL). Called from the elector
	// goroutine.
	OnLose  func()
	Metrics *ElectorMetrics
	Logger  *slog.Logger
	// Tracer, when non-nil, emits one span per lease acquire/renew attempt.
	Tracer *span.Tracer
}

// ElectorMetrics is the election telemetry bundle; nil-safe like the rest of
// the obs counters.
type ElectorMetrics struct {
	Leader    *obs.Gauge // 1 while this controller holds the lease
	Epoch     *obs.Gauge // current lease epoch while leading
	Renewals  *obs.Counter
	Losses    *obs.Counter
	Takeovers *obs.Counter
}

// NewElectorMetrics registers the election metric families on r.
func NewElectorMetrics(r *obs.Registry) *ElectorMetrics {
	return &ElectorMetrics{
		Leader:    r.Gauge("sb_leader", "1 while this controller holds the leadership lease."),
		Epoch:     r.Gauge("sb_leader_epoch", "Lease epoch of the current leadership (0 when following)."),
		Renewals:  r.Counter("sb_lease_renewals_total", "Successful lease acquisitions and renewals."),
		Losses:    r.Counter("sb_lease_losses_total", "Leadership losses (lease taken over or renewals timing out)."),
		Takeovers: r.Counter("sb_lease_takeovers_total", "Leaderships acquired over a lapsed lease that had a previous owner."),
	}
}

// Elector runs the lease loop for one controller. Start it with Run (in a
// goroutine); observe it with IsLeader/Epoch/LeaderHint.
type Elector struct {
	cfg ElectorConfig

	mu      sync.Mutex
	leading bool      // guarded by mu
	epoch   int64     // guarded by mu; valid while leading
	hint    string    // guarded by mu; last observed holder when following
	lastOK  time.Time // guarded by mu; last successful store exchange while leading

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// NewElector validates cfg and returns an Elector (not yet running).
func NewElector(cfg ElectorConfig) *Elector {
	if cfg.Key == "" {
		cfg.Key = DefaultLeaseKey
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultLeaseTTL
	}
	if cfg.Renew <= 0 {
		cfg.Renew = cfg.TTL / 3
	}
	if cfg.Metrics == nil {
		cfg.Metrics = &ElectorMetrics{}
	}
	return &Elector{cfg: cfg, stopCh: make(chan struct{}), done: make(chan struct{})}
}

// Run drives the lease loop until Stop: an immediate acquisition attempt,
// then one attempt per renew interval. A follower's attempt doubles as its
// takeover watch — SETLEASE succeeds the moment the leader's grant lapses.
func (e *Elector) Run() {
	defer close(e.done)
	e.attempt()
	t := time.NewTicker(e.cfg.Renew)
	defer t.Stop()
	for {
		select {
		case <-e.stopCh:
			e.resign()
			return
		case <-t.C:
			e.attempt()
		}
	}
}

// attempt makes one acquire-or-renew pass and reconciles the local
// leadership state with the outcome.
func (e *Elector) attempt() {
	e.mu.Lock()
	wasLeading := e.leading
	e.mu.Unlock()

	name := "lease.acquire"
	if wasLeading {
		name = "lease.renew"
	}
	ctx := context.Background()
	var sp *span.Span
	if e.cfg.Tracer != nil {
		ctx, sp = e.cfg.Tracer.Start(ctx, name)
	}
	ctx, cancel := context.WithTimeout(ctx, e.cfg.Renew)
	epoch, err := e.cfg.Store.SetLeaseContext(ctx, e.cfg.Key, e.cfg.ID, e.cfg.TTL)
	cancel()

	switch {
	case err == nil:
		e.cfg.Metrics.Renewals.Inc()
		e.won(epoch, wasLeading)
	case kvstore.IsLeaseHeldError(err):
		// Definitive: someone else leads. Follow them.
		e.follow(kvstore.LeaseHolder(err), wasLeading, "lease held")
	default:
		// Transport trouble (or a standby mid-promotion). A leader keeps
		// leading on the grace of its last grant: only when the store has
		// been unreachable for a whole TTL — so the grant may have lapsed
		// and another controller may hold the lease — does it step down.
		if sp != nil {
			sp.SetError(err)
		}
		e.mu.Lock()
		graceOver := e.leading && time.Since(e.lastOK) >= e.cfg.TTL
		e.mu.Unlock()
		if graceOver {
			e.follow("", true, "renewals failing past TTL")
		}
	}
	if sp != nil {
		sp.End()
	}
}

// won records a successful grant. A fresh acquisition (not a renewal) fires
// OnLead and, when the epoch shows a previous reign, counts a takeover.
func (e *Elector) won(epoch int64, wasLeading bool) {
	e.mu.Lock()
	e.leading = true
	e.epoch = epoch
	e.hint = ""
	e.lastOK = time.Now()
	e.mu.Unlock()
	e.cfg.Metrics.Leader.Set(1)
	e.cfg.Metrics.Epoch.Set(float64(epoch))
	if wasLeading {
		return
	}
	if epoch > 1 {
		e.cfg.Metrics.Takeovers.Inc()
	}
	if e.cfg.Logger != nil {
		e.cfg.Logger.Info("leadership acquired", "key", e.cfg.Key, "id", e.cfg.ID, "epoch", epoch)
	}
	if e.cfg.OnLead != nil {
		e.cfg.OnLead(epoch)
	}
}

// follow records not-leading. A transition out of leadership fires OnLose.
func (e *Elector) follow(holder string, wasLeading bool, why string) {
	e.mu.Lock()
	e.leading = false
	e.epoch = 0
	if holder != "" {
		e.hint = holder
	}
	e.mu.Unlock()
	e.cfg.Metrics.Leader.Set(0)
	e.cfg.Metrics.Epoch.Set(0)
	if !wasLeading {
		return
	}
	e.cfg.Metrics.Losses.Inc()
	if e.cfg.Logger != nil {
		e.cfg.Logger.Warn("leadership lost", "key", e.cfg.Key, "id", e.cfg.ID,
			"holder", holder, "reason", why)
	}
	if e.cfg.OnLose != nil {
		e.cfg.OnLose()
	}
}

// resign releases the lease on an orderly stop, so a peer takes over in one
// renew interval instead of waiting out the TTL. Best-effort: if the store
// is unreachable the lease simply lapses.
func (e *Elector) resign() {
	e.mu.Lock()
	leading := e.leading
	e.mu.Unlock()
	if !leading {
		return
	}
	_ = e.cfg.Store.DelLease(e.cfg.Key, e.cfg.ID)
	e.follow("", true, "stopped")
}

// Stop ends the lease loop, resigning leadership if held. It does not wait;
// receive from Done for that.
func (e *Elector) Stop() {
	e.stopOnce.Do(func() { close(e.stopCh) })
}

// Done is closed when Run has returned.
func (e *Elector) Done() <-chan struct{} { return e.done }

// TTL returns the configured lease duration — the honest Retry-After for a
// standby 503: leadership moves within one TTL of a leader's death.
func (e *Elector) TTL() time.Duration { return e.cfg.TTL }

// IsLeader reports whether this controller currently holds the lease.
func (e *Elector) IsLeader() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.leading
}

// Epoch returns the current lease epoch (0 when not leading).
func (e *Elector) Epoch() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.leading {
		return 0
	}
	return e.epoch
}

// LeaderHint returns the last observed lease holder while following ("" when
// leading or unknown), for Retry-After redirects on the HTTP surface.
func (e *Elector) LeaderHint() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.leading {
		return ""
	}
	return e.hint
}
