package controller

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"switchboard/internal/geo"
	"switchboard/internal/kvstore"
	"switchboard/internal/model"
)

// EventKind classifies a replay event.
type EventKind int

// Event kinds in processing order for equal timestamps.
const (
	// EventStart is the first participant joining a call.
	EventStart EventKind = iota
	// EventJoin is a later participant joining (a media change rides on
	// the join in this model).
	EventJoin
	// EventFreeze is the config-known moment, A into the call.
	EventFreeze
	// EventEnd is the call finishing.
	EventEnd
)

func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventJoin:
		return "join"
	case EventFreeze:
		return "freeze"
	case EventEnd:
		return "end"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one controller input derived from a call record.
type Event struct {
	Time    time.Time
	Kind    EventKind
	CallID  uint64
	Country geo.CountryCode
	Media   model.MediaType
	// SeriesID is set on EventStart for recurring calls; the scheduler
	// knows a meeting's series before anyone joins.
	SeriesID uint64
	// Config is set on EventFreeze: the config as known at A.
	Config model.CallConfig
}

// BuildEvents expands call records into a time-ordered event stream: one
// start, a join per later participant, one freeze at A, one end.
func BuildEvents(recs []*model.CallRecord, freeze time.Duration) []Event {
	var events []Event
	for _, r := range recs {
		if len(r.Legs) == 0 {
			continue
		}
		events = append(events, Event{
			Time: r.Start, Kind: EventStart, CallID: r.ID,
			Country: r.Legs[0].Country, Media: r.Legs[0].Media,
			SeriesID: r.SeriesID,
		})
		for _, leg := range r.Legs[1:] {
			if leg.JoinOffset >= r.Duration {
				continue
			}
			events = append(events, Event{
				Time: r.Start.Add(leg.JoinOffset), Kind: EventJoin, CallID: r.ID,
				Country: leg.Country, Media: leg.Media,
			})
		}
		freezeAt := r.Start.Add(freeze)
		if freeze >= r.Duration {
			freezeAt = r.Start.Add(r.Duration - 1)
		}
		events = append(events, Event{
			Time: freezeAt, Kind: EventFreeze, CallID: r.ID,
			Config: r.ConfigFrozenAt(freezeAt.Sub(r.Start)),
		})
		events = append(events, Event{
			Time: r.Start.Add(r.Duration), Kind: EventEnd, CallID: r.ID,
		})
	}
	sort.Slice(events, func(i, j int) bool {
		if !events[i].Time.Equal(events[j].Time) {
			return events[i].Time.Before(events[j].Time)
		}
		if events[i].Kind != events[j].Kind {
			return events[i].Kind < events[j].Kind
		}
		return events[i].CallID < events[j].CallID
	})
	return events
}

// PeakEventRate returns the highest events-per-second over 30-minute
// windows — the trace's peak arrival rate that Fig 10's throughput is
// normalized against.
func PeakEventRate(events []Event) float64 {
	if len(events) == 0 {
		return 0
	}
	origin := events[0].Time
	counts := make(map[int]int)
	for _, e := range events {
		counts[model.SlotIndex(origin, e.Time)]++
	}
	peak := 0
	for _, n := range counts {
		if n > peak {
			peak = n
		}
	}
	return float64(peak) / model.SlotDuration.Seconds()
}

// Replay feeds events through the controller in order, as the migration
// experiment (§6.4) does. It returns the final stats.
func (c *Controller) Replay(events []Event) (Stats, error) {
	ctx := context.Background()
	for _, e := range events {
		var err error
		switch e.Kind {
		case EventStart:
			_, err = c.CallStartedWithSeries(ctx, e.CallID, e.Country, e.SeriesID, e.Time)
		case EventJoin:
			c.ParticipantJoined(ctx, e.CallID, e.Country, e.Media)
		case EventFreeze:
			_, _, err = c.ConfigKnown(ctx, e.CallID, e.Config, e.Time)
		case EventEnd:
			err = c.CallEnded(ctx, e.CallID)
		}
		if err != nil {
			return c.Stats(), fmt.Errorf("controller: replay %v(%d): %w", e.Kind, e.CallID, err)
		}
	}
	return c.Stats(), nil
}

// ThroughputResult reports one Fig 10 benchmark run.
type ThroughputResult struct {
	Workers int
	// EventsPerSec is the sustained controller throughput.
	EventsPerSec float64
	// Normalized is EventsPerSec divided by the normalization target
	// rate (the production-scale peak); ≥ 1 means the controller keeps
	// up with that peak.
	Normalized float64
	// MinWrite and MaxWrite bound the observed kvstore write latencies.
	MinWrite, MaxWrite time.Duration
	// Events is the number processed.
	Events int
}

// BenchThroughput measures how many events per second the controller's
// write path sustains with the given number of worker threads, each holding
// its own kvstore connection (§6.6). Events are partitioned by call ID so
// one call's events stay ordered within a worker. targetRate is the arrival
// rate (events/second) Normalized is computed against; pass 0 to normalize
// against the replayed trace's own peak rate.
func BenchThroughput(addr string, workers int, events []Event, targetRate float64) (ThroughputResult, error) {
	if workers <= 0 {
		return ThroughputResult{}, fmt.Errorf("controller: workers must be positive")
	}
	clients := make([]*kvstore.Client, workers)
	for i := range clients {
		c, err := kvstore.Dial(addr)
		if err != nil {
			return ThroughputResult{}, err
		}
		defer func() { _ = c.Close() }()
		clients[i] = c
	}
	queues := make([][]Event, workers)
	for _, e := range events {
		wkr := int(e.CallID % uint64(workers))
		queues[wkr] = append(queues[wkr], e)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	minW := make([]time.Duration, workers)
	maxW := make([]time.Duration, workers)
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := clients[i]
			minW[i] = time.Hour
			for _, e := range queues[i] {
				key := "call:" + strconv.FormatUint(e.CallID, 10)
				var err error
				switch e.Kind {
				case EventStart:
					err = c.HSet(key, "first", string(e.Country))
				case EventJoin:
					err = c.HSet(key, "join:"+string(e.Country), e.Media.String())
				case EventFreeze:
					err = c.HSet(key, "config", e.Config.Key())
				case EventEnd:
					err = c.Del(key)
				}
				if err != nil {
					errCh <- err
					return
				}
				if rtt := c.LastRTT(); rtt > 0 {
					if rtt < minW[i] {
						minW[i] = rtt
					}
					if rtt > maxW[i] {
						maxW[i] = rtt
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return ThroughputResult{}, err
	}

	res := ThroughputResult{
		Workers:  workers,
		Events:   len(events),
		MinWrite: time.Hour,
	}
	for i := range minW {
		if len(queues[i]) == 0 {
			continue
		}
		if minW[i] < res.MinWrite {
			res.MinWrite = minW[i]
		}
		if maxW[i] > res.MaxWrite {
			res.MaxWrite = maxW[i]
		}
	}
	if elapsed > 0 {
		res.EventsPerSec = float64(len(events)) / elapsed.Seconds()
	}
	if targetRate <= 0 {
		targetRate = PeakEventRate(events)
	}
	if targetRate > 0 {
		res.Normalized = res.EventsPerSec / targetRate
	}
	return res, nil
}
