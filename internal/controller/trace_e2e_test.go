package controller

import (
	"context"
	"testing"
	"time"

	"switchboard/internal/faults"
	"switchboard/internal/kvstore"
	"switchboard/internal/obs/span"
)

// TestTraceThroughChaosProxy is the tracing acceptance drill: a placement
// whose store traffic crosses the chaos proxy (injected latency, then one
// connection kill) must yield one coherent trace — root → controller.start →
// controller.persist → kv.HSET — where the post-kill attempt appears as its
// own kv leg carrying retry=true and parented on the same persist span, and
// the store's own per-verb records carry the same trace ID.
func TestTraceThroughChaosProxy(t *testing.T) {
	srv, l := startStore(t)
	defer srv.Close()

	// Every store byte pays 1ms of injected latency, so kv legs have real
	// width in the trace.
	const injected = time.Millisecond
	inj := faults.NewInjector(7, faults.Rule{Kind: faults.Latency, Prob: 1, Delay: injected})
	proxy, err := faults.NewProxy(l.Addr().String(), inj)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	opts := fastOptions()
	opts.MaxRetries = 2 // the kill below must surface as a retry leg, not an error
	client, err := kvstore.DialOptions(proxy.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctrl, err := New(Config{
		World:         world,
		Store:         client,
		ProbeInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	ring := span.NewRing(64)
	tracer := span.NewTracer(42, ring)

	// First placement: healthy path, no retry legs expected.
	ctx, root := tracer.Start(context.Background(), "test.place")
	now := time.Now()
	if _, err := ctrl.CallStarted(ctx, 1, "JP", now); err != nil {
		t.Fatal(err)
	}
	root.End()

	// Kill the live proxy connection, then let new dials through: the next
	// placement's first HSET attempt dies on the severed conn and the retry
	// (fresh dial through the restored proxy) succeeds.
	proxy.Cut()
	proxy.Restore()

	ctx2, root2 := tracer.Start(context.Background(), "test.place.retry")
	if _, err := ctrl.CallStarted(ctx2, 2, "JP", now); err != nil {
		t.Fatal(err)
	}
	root2.End()

	spans := ring.Trace(root2.TraceID())
	byID := map[span.ID]span.Record{}
	for _, r := range spans {
		byID[r.Span] = r
	}
	find := func(name string, retry bool) (span.Record, bool) {
		for _, r := range spans {
			if r.Name == name && (r.Attrs.Get("retry") == "true") == retry {
				return r, true
			}
		}
		return span.Record{}, false
	}

	failed, ok := find("kv.HSET", false)
	if !ok {
		t.Fatalf("trace has no first kv.HSET attempt: %+v", spans)
	}
	if failed.Status != "error" {
		t.Errorf("first attempt status = %q, want error (severed conn)", failed.Status)
	}
	retryLeg, ok := find("kv.HSET", true)
	if !ok {
		t.Fatalf("trace has no retry=true kv leg: %+v", spans)
	}
	if retryLeg.Status == "error" {
		t.Errorf("retry leg failed: %+v", retryLeg)
	}

	// Both attempts hang off the same persist span, which chains to the
	// root through controller.start.
	persist, ok := byID[retryLeg.Parent]
	if !ok || persist.Name != "controller.persist" {
		t.Fatalf("retry leg parent = %+v, want controller.persist", persist)
	}
	if failed.Parent != persist.Span {
		t.Errorf("attempts have different parents: %s vs %s", failed.Parent, retryLeg.Parent)
	}
	start, ok := byID[persist.Parent]
	if !ok || start.Name != "controller.start" {
		t.Fatalf("persist parent = %+v, want controller.start", start)
	}
	if start.Parent != root2.SpanID() {
		t.Errorf("controller.start parent = %s, want root %s", start.Parent, root2.SpanID())
	}

	// The retry leg crossed the latency-injecting proxy twice (redial +
	// command), so it cannot be faster than one injected delay.
	if retryLeg.Duration < injected {
		t.Errorf("retry leg took %v, want >= %v (injected latency missing)", retryLeg.Duration, injected)
	}

	// The store saw both placements' writes under their trace IDs — the wire
	// propagation held across the proxy and the redial.
	verbs := map[span.ID]int{}
	for _, tr := range srv.TraceRecords() {
		id, err := span.ParseID(tr.Trace)
		if err != nil {
			t.Fatalf("store recorded malformed trace id %q", tr.Trace)
		}
		if tr.Verb == "HSET" {
			verbs[id]++
		}
	}
	if verbs[root.TraceID()] == 0 {
		t.Errorf("store has no HSET record for first trace %s", root.TraceID())
	}
	if verbs[root2.TraceID()] == 0 {
		t.Errorf("store has no HSET record for retried trace %s", root2.TraceID())
	}
}
