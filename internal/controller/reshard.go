// Resharding support: the controller-side primitives live resharding rides
// on. The shard.Coordinator moves persisted call state between shard key
// prefixes; the controller's part is (1) an atomic drain-and-ack so the
// coordinator knows every write this leadership accepted has landed, (2)
// single-call recovery with an old-prefix fallback for the cutover window's
// double reads, (3) eviction of calls whose ownership moved away, and (4) a
// recovery filter so a source shard's leader stops resurrecting moved calls
// from retired keys.

package controller

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"switchboard/internal/model"
	"switchboard/internal/obs/span"
)

// AckHandoff drains the write-behind journal and, with the store healthy and
// the journal empty, writes this leadership's lease epoch under ackKey — all
// under storeMu, so the drain and the ack are atomic with respect to every
// persist. Combined with the manager's moved-write gate this is the
// journal-handoff barrier: any call-state write accepted before the hold
// flipped has either landed or sits in the journal this call flushes, and the
// ack itself rides the armed fence, so a deposed leader's ack is rejected
// instead of green-lighting a delta copy over state it no longer owns.
//
//sblint:fencepath
func (c *Controller) AckHandoff(ctx context.Context, ackKey string, epoch int64) error {
	if c.store == nil {
		return fmt.Errorf("controller: no store to ack handoff on")
	}
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if c.degraded {
		c.lastProbe = time.Now()
		if err := c.store.PingContext(ctx); err != nil {
			return err
		}
		c.replayLocked(ctx)
		if c.degraded {
			return fmt.Errorf("controller: journal not drained; store lost mid-handoff")
		}
	}
	return c.store.SetContext(ctx, ackKey, strconv.FormatInt(epoch, 10))
}

// SetRecoverFilter installs a predicate gating which persisted calls
// RecoverCalls re-admits; nil admits everything. The shard manager points it
// at the current ring, so after a reshard a source shard's next leader skips
// the moved calls still sitting under its retired keys instead of
// resurrecting conferences it no longer owns.
func (c *Controller) SetRecoverFilter(admit func(id uint64) bool) {
	c.mu.Lock()
	c.recoverOK = admit
	c.mu.Unlock()
}

// RecoverCall re-admits one persisted call, preferring this controller's own
// prefix and falling back to altPrefix (the pre-cutover owner's namespace)
// when the call is unknown there. When the state is found only under the
// fallback it is first copied forward into this controller's prefix — the
// fenced HCOPY makes the recovery durable, so the retired key can be garbage
// collected without losing the call. Returns whether the call is live in
// memory after the attempt. Already-known calls return true without touching
// the store; this is the cutover window's double-read.
//
//sblint:fencepath
func (c *Controller) RecoverCall(ctx context.Context, id uint64, altPrefix string) (bool, error) {
	c.mu.Lock()
	_, known := c.calls[id]
	c.mu.Unlock()
	if known {
		return true, nil
	}
	if c.store == nil {
		return false, nil
	}
	ctx, sp := span.Child(ctx, "controller.recover_call")
	if sp != nil {
		defer sp.End()
	}
	idStr := strconv.FormatUint(id, 10)
	ownKey := c.keyPrefix + "call:" + idStr

	c.storeMu.Lock()
	h, err := c.store.HGetAllContext(ctx, ownKey)
	if err != nil {
		c.storeMu.Unlock()
		return false, err
	}
	if len(h) == 0 && altPrefix != "" && altPrefix != c.keyPrefix {
		altKey := altPrefix + "call:" + idStr
		if h, err = c.store.HGetAllContext(ctx, altKey); err != nil {
			c.storeMu.Unlock()
			return false, err
		}
		if len(h) > 0 && h["state"] != "ended" {
			// Copy the stray state forward under this leadership's fence so
			// the double read happens once, not on every request.
			if _, err = c.store.HCopyContext(ctx, altKey, ownKey); err != nil {
				c.storeMu.Unlock()
				return false, err
			}
		}
	}
	c.storeMu.Unlock()

	if len(h) == 0 || h["state"] == "ended" {
		return false, nil
	}
	dc, derr := strconv.Atoi(h["dc"])
	if derr != nil || dc < 0 || dc >= len(c.world.DCs()) {
		return false, nil
	}
	st := &callState{dc: dc}
	if key := h["config"]; key != "" {
		if cfg, cerr := model.ParseConfigKey(key); cerr == nil {
			st.frozen = true
			st.cfg = cfg
		}
	}
	c.mu.Lock()
	if _, dup := c.calls[id]; dup {
		c.mu.Unlock()
		return true, nil
	}
	c.calls[id] = st
	c.mu.Unlock()
	c.metrics.ActiveCalls.Add(1)
	return true, nil
}

// EvictCalls drops every in-memory call matching evict, releasing planned
// slots back to the plan. Nothing is persisted and no end transition is
// recorded: the calls are not over, their ownership moved to another shard,
// whose leader recovered them from the copied state. Returns how many calls
// were evicted.
func (c *Controller) EvictCalls(evict func(id uint64) bool) int {
	c.mu.Lock()
	var n int
	for id, st := range c.calls {
		if !evict(id) {
			continue
		}
		delete(c.calls, id)
		if st.planned && c.placer != nil {
			c.placer.Release(st.cfg, st.slot, st.dc)
		}
		n++
	}
	c.mu.Unlock()
	if n > 0 {
		c.metrics.ActiveCalls.Add(float64(-n))
	}
	return n
}

// CopyKey copies one persisted call hash into another shard's namespace via
// the store's server-side HCOPY, under this controller's armed fence. The
// shard.Coordinator uses the lease-holding side for fenced copies; exposed on
// the controller so the store client (and its fence state) stays private.
//
//sblint:fencepath
func (c *Controller) CopyKey(ctx context.Context, src, dst string) (int64, error) {
	if c.store == nil {
		return 0, nil
	}
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	return c.store.HCopyContext(ctx, src, dst)
}

// Knows reports whether the controller has the call in memory.
func (c *Controller) Knows(id uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.calls[id]
	return ok
}
