// Package forecast implements Holt-Winters triple exponential smoothing
// (additive seasonality), the timeseries model Switchboard uses to project
// per-call-config demand months ahead (§5.2), plus the normalized RMSE/MAE
// accuracy metrics of §6.5.
package forecast

import (
	"fmt"
	"math"
)

// Model is a fitted Holt-Winters state. Create with Fit or FitAuto.
type Model struct {
	// Alpha, Beta, Gamma are the level, trend, and seasonal smoothing
	// factors in [0, 1].
	Alpha, Beta, Gamma float64
	// Season is the season length in samples (0 disables seasonality and
	// reduces the model to double exponential smoothing).
	Season int

	level    float64
	trend    float64
	seasonal []float64 // rolling seasonal components, length Season
	n        int       // samples consumed
}

// Fit runs the smoothing recursions over series with fixed parameters.
// A seasonal fit needs at least two full seasons of data; shorter series can
// use season = 0.
func Fit(series []float64, season int, alpha, beta, gamma float64) (*Model, error) {
	if season < 0 {
		return nil, fmt.Errorf("forecast: negative season %d", season)
	}
	for _, p := range []float64{alpha, beta, gamma} {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("forecast: smoothing parameter %g outside [0,1]", p)
		}
	}
	if season > 0 && len(series) < 2*season {
		return nil, fmt.Errorf("forecast: %d samples < two seasons (%d)", len(series), 2*season)
	}
	if season == 0 && len(series) < 2 {
		return nil, fmt.Errorf("forecast: need at least 2 samples, got %d", len(series))
	}
	m := &Model{Alpha: alpha, Beta: beta, Gamma: gamma, Season: season}
	m.initState(series)
	start := 1
	if season > 0 {
		start = season
	}
	for t := start; t < len(series); t++ {
		m.update(series[t])
	}
	return m, nil
}

// initState seeds level, trend, and seasonal components from the first
// season(s) of data, using the standard decomposition initialization.
func (m *Model) initState(series []float64) {
	if m.Season == 0 {
		m.level = series[0]
		m.trend = series[1] - series[0]
		m.n = 1
		return
	}
	s := m.Season
	var mean1, mean2 float64
	for i := 0; i < s; i++ {
		mean1 += series[i]
		mean2 += series[s+i]
	}
	mean1 /= float64(s)
	mean2 /= float64(s)
	m.level = mean1
	m.trend = (mean2 - mean1) / float64(s)
	m.seasonal = make([]float64, s)
	// Average each in-season position's deviation from its season mean
	// across all complete seasons.
	nSeasons := len(series) / s
	for i := 0; i < s; i++ {
		var dev float64
		for k := 0; k < nSeasons; k++ {
			var seasonMean float64
			for j := 0; j < s; j++ {
				seasonMean += series[k*s+j]
			}
			seasonMean /= float64(s)
			dev += series[k*s+i] - seasonMean
		}
		m.seasonal[i] = dev / float64(nSeasons)
	}
	m.n = s
}

// update consumes one observation, advancing level/trend/seasonal state.
func (m *Model) update(x float64) {
	if m.Season == 0 {
		prevLevel := m.level
		m.level = m.Alpha*x + (1-m.Alpha)*(m.level+m.trend)
		m.trend = m.Beta*(m.level-prevLevel) + (1-m.Beta)*m.trend
		m.n++
		return
	}
	si := m.n % m.Season
	prevLevel := m.level
	m.level = m.Alpha*(x-m.seasonal[si]) + (1-m.Alpha)*(m.level+m.trend)
	m.trend = m.Beta*(m.level-prevLevel) + (1-m.Beta)*m.trend
	m.seasonal[si] = m.Gamma*(x-m.level) + (1-m.Gamma)*m.seasonal[si]
	m.n++
}

// predictAhead returns the h-step-ahead prediction (h >= 1) without
// consuming data.
func (m *Model) predictAhead(h int) float64 {
	v := m.level + float64(h)*m.trend
	if m.Season > 0 {
		v += m.seasonal[(m.n+h-1)%m.Season]
	}
	return v
}

// Forecast returns the next horizon predictions, clamped at zero (call
// counts cannot be negative).
func (m *Model) Forecast(horizon int) []float64 {
	out := make([]float64, horizon)
	for h := 1; h <= horizon; h++ {
		v := m.predictAhead(h)
		if v < 0 {
			v = 0
		}
		out[h-1] = v
	}
	return out
}

// FitAuto grid-searches the smoothing parameters, picking the combination
// with the lowest in-sample one-step-ahead RMSE. It falls back to a
// non-seasonal fit when the series is too short for the requested season.
func FitAuto(series []float64, season int) (*Model, error) {
	if season > 0 && len(series) < 2*season {
		season = 0
	}
	if season == 0 && len(series) < 2 {
		return nil, fmt.Errorf("forecast: need at least 2 samples, got %d", len(series))
	}
	alphas := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	betas := []float64{0.01, 0.05, 0.1, 0.3}
	gammas := []float64{0.05, 0.1, 0.3, 0.6}
	if season == 0 {
		gammas = []float64{0}
	}
	var best *Model
	bestErr := math.Inf(1)
	for _, a := range alphas {
		for _, b := range betas {
			for _, g := range gammas {
				rmse, err := oneStepRMSE(series, season, a, b, g)
				if err != nil {
					return nil, err
				}
				if rmse < bestErr {
					bestErr = rmse
					m, err := Fit(series, season, a, b, g)
					if err != nil {
						return nil, err
					}
					best = m
				}
			}
		}
	}
	return best, nil
}

// oneStepRMSE replays the recursions, accumulating one-step-ahead errors.
func oneStepRMSE(series []float64, season int, alpha, beta, gamma float64) (float64, error) {
	m := &Model{Alpha: alpha, Beta: beta, Gamma: gamma, Season: season}
	if season > 0 && len(series) < 2*season {
		return 0, fmt.Errorf("forecast: series too short")
	}
	if season == 0 && len(series) < 2 {
		return 0, fmt.Errorf("forecast: series too short")
	}
	m.initState(series)
	start := 1
	if season > 0 {
		start = season
	}
	var sse float64
	var n int
	for t := start; t < len(series); t++ {
		e := series[t] - m.predictAhead(1)
		sse += e * e
		n++
		m.update(series[t])
	}
	if n == 0 {
		return 0, nil
	}
	return math.Sqrt(sse / float64(n)), nil
}

// Accuracy holds forecast error metrics for one series.
type Accuracy struct {
	RMSE float64
	MAE  float64
	// NormRMSE and NormMAE are RMSE/MAE divided by the peak ground-truth
	// value (§6.5's normalization, so elephant and mice configs compare).
	NormRMSE float64
	NormMAE  float64
}

// Evaluate compares a forecast against ground truth of equal length.
func Evaluate(forecast, truth []float64) (Accuracy, error) {
	if len(forecast) != len(truth) {
		return Accuracy{}, fmt.Errorf("forecast: length mismatch %d vs %d", len(forecast), len(truth))
	}
	if len(truth) == 0 {
		return Accuracy{}, fmt.Errorf("forecast: empty series")
	}
	var sse, sae, peak float64
	for i := range truth {
		e := forecast[i] - truth[i]
		sse += e * e
		sae += math.Abs(e)
		if truth[i] > peak {
			peak = truth[i]
		}
	}
	n := float64(len(truth))
	acc := Accuracy{RMSE: math.Sqrt(sse / n), MAE: sae / n}
	if peak > 0 {
		acc.NormRMSE = acc.RMSE / peak
		acc.NormMAE = acc.MAE / peak
	}
	return acc, nil
}
