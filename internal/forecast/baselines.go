package forecast

import (
	"fmt"
	"math"
)

// SeasonalNaive forecasts each horizon point as the value one season ago
// (repeating the last observed season). It is the standard baseline a
// seasonal model must beat.
func SeasonalNaive(series []float64, season, horizon int) ([]float64, error) {
	if season <= 0 {
		return nil, fmt.Errorf("forecast: season must be positive, got %d", season)
	}
	if len(series) < season {
		return nil, fmt.Errorf("forecast: %d samples < one season (%d)", len(series), season)
	}
	last := series[len(series)-season:]
	out := make([]float64, horizon)
	for h := 0; h < horizon; h++ {
		out[h] = last[h%season]
	}
	return out, nil
}

// Drift forecasts by extending the straight line through the first and last
// observations (the classic drift method), clamped at zero.
func Drift(series []float64, horizon int) ([]float64, error) {
	n := len(series)
	if n < 2 {
		return nil, fmt.Errorf("forecast: need at least 2 samples, got %d", n)
	}
	slope := (series[n-1] - series[0]) / float64(n-1)
	out := make([]float64, horizon)
	for h := 1; h <= horizon; h++ {
		v := series[n-1] + slope*float64(h)
		if v < 0 {
			v = 0
		}
		out[h-1] = v
	}
	return out, nil
}

// Comparison scores Holt-Winters against the naive baselines on a train/test
// split of one series.
type Comparison struct {
	HoltWinters   Accuracy
	SeasonalNaive Accuracy
	Drift         Accuracy
}

// Compare fits all three methods on train and scores them against test.
// season applies to Holt-Winters and the seasonal-naive baseline.
func Compare(train, test []float64, season int) (*Comparison, error) {
	if len(test) == 0 {
		return nil, fmt.Errorf("forecast: empty test series")
	}
	horizon := len(test)
	cmp := &Comparison{}

	hw, err := FitAuto(train, season)
	if err != nil {
		return nil, err
	}
	if cmp.HoltWinters, err = Evaluate(hw.Forecast(horizon), test); err != nil {
		return nil, err
	}

	effSeason := season
	if effSeason <= 0 || len(train) < effSeason {
		effSeason = min(len(train), 1)
	}
	sn, err := SeasonalNaive(train, effSeason, horizon)
	if err != nil {
		return nil, err
	}
	if cmp.SeasonalNaive, err = Evaluate(sn, test); err != nil {
		return nil, err
	}

	dr, err := Drift(train, horizon)
	if err != nil {
		return nil, err
	}
	if cmp.Drift, err = Evaluate(dr, test); err != nil {
		return nil, err
	}
	return cmp, nil
}

// Skill returns the relative RMSE improvement of Holt-Winters over the best
// baseline: positive means Holt-Winters wins.
func (c *Comparison) Skill() float64 {
	best := math.Min(c.SeasonalNaive.RMSE, c.Drift.RMSE)
	if best == 0 {
		return 0
	}
	return 1 - c.HoltWinters.RMSE/best
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
