package forecast

import (
	"math"
	"testing"
)

func TestSeasonalNaive(t *testing.T) {
	series := []float64{1, 2, 3, 10, 20, 30}
	f, err := SeasonalNaive(series, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{10, 20, 30, 10, 20}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("f = %v, want %v", f, want)
		}
	}
	if _, err := SeasonalNaive(series, 0, 3); err == nil {
		t.Error("zero season should error")
	}
	if _, err := SeasonalNaive([]float64{1}, 3, 3); err == nil {
		t.Error("short series should error")
	}
}

func TestDrift(t *testing.T) {
	// Line from 0 to 10 over 11 points: slope 1.
	series := make([]float64, 11)
	for i := range series {
		series[i] = float64(i)
	}
	f, err := Drift(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	for h, want := range []float64{11, 12, 13} {
		if math.Abs(f[h]-want) > 1e-12 {
			t.Fatalf("f = %v", f)
		}
	}
	// Declining series clamps at zero.
	f, err = Drift([]float64{10, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f {
		if v < 0 {
			t.Fatal("negative drift forecast")
		}
	}
	if _, err := Drift([]float64{1}, 2); err == nil {
		t.Error("single sample should error")
	}
}

func TestCompareHoltWintersWinsOnSeasonalTrend(t *testing.T) {
	// Trending seasonal series: HW should beat both baselines (the
	// seasonal-naive misses the trend; drift misses the season).
	season := 12
	series := synthSeries(season*10, season, 100, 0.8, 25, 1, 5)
	train, test := series[:season*8], series[season*8:]
	cmp, err := Compare(train, test, season)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.HoltWinters.RMSE >= cmp.SeasonalNaive.RMSE {
		t.Errorf("HW RMSE %.2f not better than seasonal naive %.2f",
			cmp.HoltWinters.RMSE, cmp.SeasonalNaive.RMSE)
	}
	if cmp.HoltWinters.RMSE >= cmp.Drift.RMSE {
		t.Errorf("HW RMSE %.2f not better than drift %.2f",
			cmp.HoltWinters.RMSE, cmp.Drift.RMSE)
	}
	if cmp.Skill() <= 0 {
		t.Errorf("skill = %g, want positive", cmp.Skill())
	}
}

func TestCompareValidation(t *testing.T) {
	if _, err := Compare([]float64{1, 2, 3}, nil, 0); err == nil {
		t.Error("empty test should error")
	}
}
