package forecast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthSeries builds level + slope·t + seasonal + noise.
func synthSeries(n, season int, level, slope, seasonAmp, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for t := range out {
		s := seasonAmp * math.Sin(2*math.Pi*float64(t%season)/float64(season))
		out[t] = level + slope*float64(t) + s + noise*rng.NormFloat64()
	}
	return out
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([]float64{1, 2, 3}, -1, 0.5, 0.1, 0.1); err == nil {
		t.Error("negative season should error")
	}
	if _, err := Fit([]float64{1, 2, 3}, 0, 1.5, 0.1, 0.1); err == nil {
		t.Error("alpha > 1 should error")
	}
	if _, err := Fit([]float64{1, 2, 3}, 4, 0.5, 0.1, 0.1); err == nil {
		t.Error("short seasonal series should error")
	}
	if _, err := Fit([]float64{1}, 0, 0.5, 0.1, 0); err == nil {
		t.Error("single sample should error")
	}
}

func TestTrendOnlyForecast(t *testing.T) {
	// Pure linear series: forecasts must continue the line.
	series := make([]float64, 50)
	for i := range series {
		series[i] = 10 + 2*float64(i)
	}
	m, err := Fit(series, 0, 0.5, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Forecast(5)
	for h, v := range f {
		want := 10 + 2*float64(50+h)
		if math.Abs(v-want) > 0.5 {
			t.Errorf("h=%d: forecast %g, want %g", h+1, v, want)
		}
	}
}

func TestSeasonalForecast(t *testing.T) {
	season := 12
	series := synthSeries(season*8, season, 100, 0.5, 20, 0, 1)
	m, err := Fit(series, season, 0.3, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Forecast(season)
	truth := make([]float64, season)
	n := len(series)
	for h := 0; h < season; h++ {
		tIdx := n + h
		truth[h] = 100 + 0.5*float64(tIdx) + 20*math.Sin(2*math.Pi*float64(tIdx%season)/float64(season))
	}
	acc, err := Evaluate(f, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Noise-free seasonal series should forecast tightly.
	if acc.NormRMSE > 0.05 {
		t.Errorf("normalized RMSE %g too high for clean seasonal series", acc.NormRMSE)
	}
}

func TestFitAutoBeatsWorstFixed(t *testing.T) {
	season := 12
	series := synthSeries(season*10, season, 50, 0.3, 10, 2, 7)
	train, hold := series[:season*8], series[season*8:]
	auto, err := FitAuto(train, season)
	if err != nil {
		t.Fatal(err)
	}
	accAuto, _ := Evaluate(auto.Forecast(len(hold)), hold)
	// A deliberately bad parameterization for a trending series.
	bad, err := Fit(train, season, 0.99, 0.99, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	accBad, _ := Evaluate(bad.Forecast(len(hold)), hold)
	if accAuto.RMSE > accBad.RMSE*1.05 {
		t.Errorf("auto RMSE %g worse than bad fixed %g", accAuto.RMSE, accBad.RMSE)
	}
}

func TestFitAutoFallsBackWithoutSeasons(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5, 6}
	m, err := FitAuto(series, 48)
	if err != nil {
		t.Fatal(err)
	}
	if m.Season != 0 {
		t.Errorf("season = %d, want 0 fallback", m.Season)
	}
	if _, err := FitAuto([]float64{3}, 0); err == nil {
		t.Error("single sample should error")
	}
}

func TestForecastNonNegative(t *testing.T) {
	// A steeply declining series would go negative without clamping.
	series := make([]float64, 30)
	for i := range series {
		series[i] = 100 - 10*float64(i)
		if series[i] < 0 {
			series[i] = 0
		}
	}
	m, err := Fit(series, 0, 0.8, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Forecast(20) {
		if v < 0 {
			t.Fatalf("negative forecast %g", v)
		}
	}
}

func TestEvaluate(t *testing.T) {
	acc, err := Evaluate([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc.MAE-2.0/3) > 1e-12 {
		t.Errorf("MAE = %g", acc.MAE)
	}
	wantRMSE := math.Sqrt(4.0 / 3)
	if math.Abs(acc.RMSE-wantRMSE) > 1e-12 {
		t.Errorf("RMSE = %g, want %g", acc.RMSE, wantRMSE)
	}
	if math.Abs(acc.NormRMSE-wantRMSE/5) > 1e-12 || math.Abs(acc.NormMAE-(2.0/3)/5) > 1e-12 {
		t.Errorf("normalized = %+v", acc)
	}
	if _, err := Evaluate([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Evaluate(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestEvaluateZeroTruthPeak(t *testing.T) {
	acc, err := Evaluate([]float64{1, 1}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if acc.NormRMSE != 0 || acc.NormMAE != 0 {
		t.Error("normalization with zero peak should yield zero, not Inf")
	}
}

// TestPropertyConstantSeries: for any constant series, the forecast is that
// constant (within numerical tolerance), for all parameterizations tried.
func TestPropertyConstantSeries(t *testing.T) {
	f := func(raw uint8, horizon uint8) bool {
		c := float64(raw)
		series := make([]float64, 40)
		for i := range series {
			series[i] = c
		}
		m, err := Fit(series, 8, 0.4, 0.1, 0.2)
		if err != nil {
			return false
		}
		h := int(horizon%20) + 1
		for _, v := range m.Forecast(h) {
			if math.Abs(v-c) > 1e-6*(1+c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyScaleEquivariance: scaling the series scales the forecast.
func TestPropertyScaleEquivariance(t *testing.T) {
	base := synthSeries(96, 12, 40, 0.2, 8, 0, 3)
	f := func(scaleRaw uint8) bool {
		scale := 0.5 + float64(scaleRaw)/64
		scaled := make([]float64, len(base))
		for i, v := range base {
			scaled[i] = v * scale
		}
		m1, err1 := Fit(base, 12, 0.3, 0.05, 0.2)
		m2, err2 := Fit(scaled, 12, 0.3, 0.05, 0.2)
		if err1 != nil || err2 != nil {
			return false
		}
		f1 := m1.Forecast(12)
		f2 := m2.Forecast(12)
		for i := range f1 {
			if math.Abs(f2[i]-scale*f1[i]) > 1e-6*(1+math.Abs(f1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
