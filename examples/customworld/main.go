// Custom world: define your own countries, datacenters, and WAN topology,
// generate a workload over it, and provision. Shows the JSON world-spec
// round trip that cmd/sbplan consumes via -world.
//
// The toy world is the paper's running example: Japan, Hong Kong, India, and
// Singapore in APAC (plus Indonesia as a user-only country), with compute
// cheap in India and expensive in Singapore, and network priced so the §4.3
// joint trade-off is visible.
package main

import (
	"fmt"
	"log"
	"os"

	"switchboard"
)

func main() {
	countries := []switchboard.Country{
		{Code: "JP", Name: "Japan", Region: switchboard.APAC, Lat: 35.7, Lon: 139.7, UTCOffsetMin: 540, Weight: 30},
		{Code: "HK", Name: "Hong Kong", Region: switchboard.APAC, Lat: 22.3, Lon: 114.2, UTCOffsetMin: 480, Weight: 12},
		{Code: "IN", Name: "India", Region: switchboard.APAC, Lat: 18.9, Lon: 72.8, UTCOffsetMin: 330, Weight: 45},
		{Code: "SG", Name: "Singapore", Region: switchboard.APAC, Lat: 1.35, Lon: 103.8, UTCOffsetMin: 480, Weight: 8},
		{Code: "ID", Name: "Indonesia", Region: switchboard.APAC, Lat: -6.2, Lon: 106.8, UTCOffsetMin: 420, Weight: 15},
	}
	dcs := []switchboard.DC{
		{Name: "tokyo", Country: "JP", Region: switchboard.APAC, CoreCost: 1.3},
		{Name: "hong-kong", Country: "HK", Region: switchboard.APAC, CoreCost: 1.4},
		{Name: "pune", Country: "IN", Region: switchboard.APAC, CoreCost: 0.9},
		{Name: "singapore", Country: "SG", Region: switchboard.APAC, CoreCost: 1.5},
	}
	links := []switchboard.LinkSpec{
		{A: "JP", B: "HK"}, {A: "HK", B: "SG"}, {A: "SG", B: "IN"},
		{A: "IN", B: "HK", CostFactor: 1.4}, {A: "SG", B: "ID", CostFactor: 0.8},
		{A: "ID", B: "JP", CostFactor: 1.6}, {A: "SG", B: "JP", CostFactor: 1.1},
	}
	world, err := switchboard.NewWorld(countries, dcs, links)
	if err != nil {
		log.Fatal(err)
	}

	// Export the definition (feed this to `sbplan -world apac.json`).
	fmt.Println("world spec (JSON):")
	if err := switchboard.WriteWorld(os.Stdout, world); err != nil {
		log.Fatal(err)
	}

	// Generate a workload over the custom world.
	tc := switchboard.DefaultTraceConfig()
	tc.Days = 2
	tc.CallsPerDay = 2500
	tc.World = world
	gen, err := switchboard.NewGenerator(tc)
	if err != nil {
		log.Fatal(err)
	}
	db := switchboard.NewRecordsDB(tc.Start, world)
	gen.EachCall(func(r *switchboard.CallRecord) bool { db.Add(r); return true })

	in := &switchboard.ProvisionInputs{
		World:              world,
		Latency:            db.Estimator(20),
		Demand:             db.PeakEnvelope(20),
		LatencyThresholdMs: 120,
		WithBackup:         true,
		SlotStride:         4,
	}
	lm, err := switchboard.NewLoadModel(in)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := switchboard.Provision(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswitchboard plan over the custom world (ACL %.1f ms):\n", plan.MeanACL(lm))
	for _, dc := range world.DCs() {
		fmt.Printf("  %-10s %7.2f cores\n", dc.Name, plan.Cores[dc.ID])
	}
	for _, l := range world.Links() {
		if plan.LinkGbps[l.ID] > 1e-6 {
			fmt.Printf("  %s-%s %9.4f Gbps\n", l.A, l.B, plan.LinkGbps[l.ID])
		}
	}

	// Where do Indonesian calls land? (The §4.3 joint-provisioning toy:
	// Singapore compute is pricier than Japan's, but the ID-SG link is
	// much cheaper than ID-JP, so Singapore should host them.)
	idCfg := switchboard.CallConfig{
		Spread: switchboard.NewSpread(map[switchboard.CountryCode]int{"ID": 4}),
		Media:  switchboard.Video,
	}
	demand := lm.Demand()
	for c, cfg := range demand.Configs {
		if cfg.Key() != idCfg.Key() {
			continue
		}
		fmt.Printf("\nplacement of %q by slot:\n", cfg.Key())
		for t := range plan.Alloc {
			for x, share := range plan.Alloc[t][c] {
				if share > 1e-9 {
					fmt.Printf("  slot %2d: %5.1f calls -> %s\n", t, share, world.DCs()[x].Name)
				}
			}
		}
	}
}
