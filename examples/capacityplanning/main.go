// Capacity planning deep-dive: run the Switchboard provisioning LP with
// failure scenarios, inspect the per-DC and per-link capacities it chose,
// verify single-DC-failure survivability, and build the daily allocation
// plan (Eq 10) within those capacities.
package main

import (
	"fmt"
	"log"
	"sort"

	"switchboard"
)

func main() {
	world := switchboard.DefaultWorld()

	tc := switchboard.DefaultTraceConfig()
	tc.Days = 3
	tc.CallsPerDay = 4000
	gen, err := switchboard.NewGenerator(tc)
	if err != nil {
		log.Fatal(err)
	}
	db := switchboard.NewRecordsDB(tc.Start, world)
	gen.EachCall(func(r *switchboard.CallRecord) bool { db.Add(r); return true })

	in := &switchboard.ProvisionInputs{
		World:              world,
		Latency:            db.Estimator(20),
		Demand:             db.PeakEnvelope(30),
		LatencyThresholdMs: 120,
		WithBackup:         true,
		SlotStride:         6,
	}
	lm, err := switchboard.NewLoadModel(in)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := switchboard.Provision(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-DC provisioned cores (serving + failure backup):")
	for _, dc := range world.DCs() {
		fmt.Printf("  %-14s %-5s %8.1f cores (unit cost %.2f)\n",
			dc.Name, dc.Region, plan.Cores[dc.ID], dc.CoreCost)
	}

	// The busiest WAN links.
	type linkCap struct {
		name string
		gbps float64
		cost float64
	}
	var caps []linkCap
	for _, l := range world.Links() {
		if plan.LinkGbps[l.ID] > 1e-6 {
			caps = append(caps, linkCap{
				name: fmt.Sprintf("%s-%s", l.A, l.B),
				gbps: plan.LinkGbps[l.ID],
				cost: plan.LinkGbps[l.ID] * l.CostPerGbps,
			})
		}
	}
	sort.Slice(caps, func(i, j int) bool { return caps[i].gbps > caps[j].gbps })
	fmt.Printf("\ntop WAN links (%d provisioned in total):\n", len(caps))
	for i, c := range caps {
		if i == 8 {
			break
		}
		fmt.Printf("  %-8s %8.4f Gbps (cost %.1f)\n", c.name, c.gbps, c.cost)
	}

	// Survivability: losing any single DC leaves enough total compute for
	// the peak demand.
	var peak float64
	d := lm.Demand()
	for t := range d.Counts {
		var load float64
		for c, dem := range d.Counts[t] {
			load += dem * lm.ComputeLoad(c)
		}
		if load > peak {
			peak = load
		}
	}
	fmt.Printf("\npeak simultaneous compute demand: %.1f cores\n", peak)
	for _, dc := range world.DCs() {
		surviving := plan.TotalCores() - plan.Cores[dc.ID]
		status := "ok"
		if surviving < peak {
			status = "INSUFFICIENT"
		}
		fmt.Printf("  lose %-14s -> %8.1f cores remain: %s\n", dc.Name, surviving, status)
	}

	// Daily allocation plan within the provisioned capacities.
	alloc, err := switchboard.BuildAllocationPlan(lm, plan.Cores, plan.LinkGbps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nallocation plan: mean ACL %.1f ms, overflow %.1f calls\n", alloc.MeanACL, alloc.Overflow)
}
