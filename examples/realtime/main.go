// Realtime controller demo: start the RESP kvstore, build a Switchboard
// allocation plan, then replay a day of call events through the realtime
// controller (§5.4) — first-joiner assignment, config freeze at A = 300 s,
// slot accounting, migrations — and finally measure the controller's write
// throughput against the store (the paper's Fig 10 setup).
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"switchboard"
)

func main() {
	world := switchboard.DefaultWorld()

	// A day of calls.
	tc := switchboard.DefaultTraceConfig()
	tc.Days = 1
	tc.CallsPerDay = 4000
	gen, err := switchboard.NewGenerator(tc)
	if err != nil {
		log.Fatal(err)
	}
	var recs []*switchboard.CallRecord
	db := switchboard.NewRecordsDB(tc.Start, world)
	gen.EachCall(func(r *switchboard.CallRecord) bool {
		db.Add(r)
		recs = append(recs, r)
		return true
	})

	// Provision and build the daily allocation plan.
	in := &switchboard.ProvisionInputs{
		World:              world,
		Latency:            db.Estimator(20),
		Demand:             db.PeakEnvelope(25),
		LatencyThresholdMs: 120,
		WithBackup:         true,
		SlotStride:         8,
	}
	lm, err := switchboard.NewLoadModel(in)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := switchboard.Provision(in)
	if err != nil {
		log.Fatal(err)
	}
	alloc, err := switchboard.BuildAllocationPlan(lm, plan.Cores, plan.LinkGbps)
	if err != nil {
		log.Fatal(err)
	}

	// Start the kvstore the controller writes call state to, with a
	// simulated cloud-store round trip so write latencies (and thread
	// scaling) look like the paper's Azure Redis numbers.
	srv := switchboard.NewKVServer()
	srv.SetSimulatedLatency(700 * time.Microsecond)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(l) }()
	defer func() { _ = srv.Close() }()
	client, err := switchboard.DialKV(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	fmt.Printf("kvstore listening on %s\n", l.Addr())

	// Replay the day through the controller following the plan.
	est := db.Estimator(20)
	aclOf := func(cfg switchboard.CallConfig, dc int) float64 { return est.ACL(cfg, dc) }
	placer := switchboard.NewPlanPlacer(lm.Demand().Configs, alloc.Alloc, aclOf, len(world.DCs()))
	ctrl, err := switchboard.NewController(switchboard.ControllerConfig{
		World:  world,
		Placer: placer,
		Store:  client,
	})
	if err != nil {
		log.Fatal(err)
	}
	events := switchboard.BuildEvents(recs, ctrl.Freeze())
	stats, err := ctrl.Replay(events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplayed %d events for %d calls\n", len(events), stats.Started)
	fmt.Printf("  frozen configs:   %d\n", stats.Frozen)
	fmt.Printf("  migrations:       %d (%.2f%% of calls)\n", stats.Migrated, 100*stats.MigrationRate())
	fmt.Printf("  unplanned configs: %d\n", stats.Unplanned)
	fmt.Printf("  kvstore ops:      %d\n", srv.OpsServed())

	// Throughput sweep (Fig 10), normalized against a production-scale
	// peak arrival rate of 10k events/s.
	const productionPeak = 10000.0
	fmt.Printf("\ncontroller write throughput vs worker threads:\n")
	for _, workers := range []int{1, 2, 4, 8} {
		res, err := switchboard.BenchControllerThroughput(l.Addr().String(), workers, events, productionPeak)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d threads: %8.0f events/s (%.2fx production peak, writes %v..%v)\n",
			res.Workers, res.EventsPerSec, res.Normalized, res.MinWrite, res.MaxWrite)
	}
}
