// Quickstart: generate a synthetic conferencing workload, build the call
// records database, and compare the three provisioning schemes (round-robin,
// locality-first, Switchboard) on cores, WAN bandwidth, cost, and latency —
// a miniature of the paper's Table 3.
package main

import (
	"fmt"
	"log"

	"switchboard"
)

func main() {
	world := switchboard.DefaultWorld()

	// 1. Generate two days of calls (deterministic for a fixed seed).
	tc := switchboard.DefaultTraceConfig()
	tc.Days = 2
	tc.CallsPerDay = 3000
	gen, err := switchboard.NewGenerator(tc)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Ingest them into the call records database.
	db := switchboard.NewRecordsDB(tc.Start, world)
	n := 0
	gen.EachCall(func(r *switchboard.CallRecord) bool {
		db.Add(r)
		n++
		return true
	})
	fmt.Printf("ingested %d calls, %d distinct call configs\n\n", n, db.NumConfigs())

	// 3. Provision for the observed demand envelope with backup capacity
	//    (one DC or one WAN link may fail).
	in := &switchboard.ProvisionInputs{
		World:              world,
		Latency:            db.Estimator(20),
		Demand:             db.PeakEnvelope(25),
		LatencyThresholdMs: 120,
		WithBackup:         true,
		SlotStride:         8,
	}
	lm, err := switchboard.NewLoadModel(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-16s %10s %10s %10s %10s\n", "scheme", "cores", "WAN Gbps", "cost", "mean ACL")
	type scheme struct {
		name string
		run  func(*switchboard.ProvisionInputs) (*switchboard.Plan, error)
	}
	for _, s := range []scheme{
		{"round-robin", switchboard.ProvisionRoundRobin},
		{"locality-first", switchboard.ProvisionLocalityFirst},
		{"switchboard", switchboard.Provision},
	} {
		plan, err := s.run(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10.1f %10.3f %10.1f %8.1fms\n",
			s.name, plan.TotalCores(), plan.TotalGbps(), plan.Cost(world), plan.MeanACL(lm))
	}
	fmt.Println("\nSwitchboard should be the cheapest at a latency close to locality-first.")
}
