// Forecasting demo: build per-call-config demand timeseries from the records
// database, fit Holt-Winters models (§5.2), evaluate the 2-day-ahead
// forecasts, and run the §8 recurring-meeting config predictor against its
// previous-instance baseline.
package main

import (
	"fmt"
	"log"

	"switchboard"
)

func main() {
	world := switchboard.DefaultWorld()

	// 16 days of history + 2 days to forecast.
	const trainDays, holdDays = 16, 2
	tc := switchboard.DefaultTraceConfig()
	tc.Days = trainDays + holdDays
	tc.CallsPerDay = 3000
	gen, err := switchboard.NewGenerator(tc)
	if err != nil {
		log.Fatal(err)
	}
	trainDB := switchboard.NewRecordsDB(tc.Start, world)
	holdStart := tc.Start.AddDate(0, 0, trainDays)
	holdDB := switchboard.NewRecordsDB(holdStart, world)
	series := map[uint64][]*switchboard.CallRecord{}
	gen.EachCall(func(r *switchboard.CallRecord) bool {
		if r.Start.Before(holdStart) {
			trainDB.Add(r)
		} else {
			holdDB.Add(r)
		}
		if r.SeriesID != 0 {
			series[r.SeriesID] = append(series[r.SeriesID], r)
		}
		return true
	})

	// Per-config Holt-Winters forecasts with a weekly season.
	const weekSlots = 7 * 48
	horizon := holdDays * 48
	holdTruth := map[string][]float64{}
	for _, cs := range holdDB.TopConfigs(holdDB.NumConfigs()) {
		holdTruth[cs.Config.Key()] = cs.Counts
	}
	fmt.Printf("%-28s %12s %12s\n", "config", "norm RMSE", "norm MAE")
	for _, cs := range trainDB.TopConfigs(8) {
		m, err := switchboard.FitForecastAuto(cs.Counts, weekSlots)
		if err != nil {
			log.Fatal(err)
		}
		f := m.Forecast(horizon)
		truth := make([]float64, horizon)
		copy(truth, holdTruth[cs.Config.Key()])
		acc, err := switchboard.EvaluateForecast(f, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %11.1f%% %11.1f%%\n", cs.Config.Key(), 100*acc.NormRMSE, 100*acc.NormMAE)
	}

	// Recurring-meeting config prediction (§8).
	ds := switchboard.BuildPredictDataset(series, 6)
	if len(ds.Series) == 0 {
		log.Fatal("no recurring series generated")
	}
	model, err := switchboard.TrainPredictor(ds)
	if err != nil {
		log.Fatal(err)
	}
	s := ds.Series[0]
	last := len(s.Attendance) - 1
	fmt.Printf("\nseries %d (%d members, %d instances): predicted next config spread:\n",
		s.ID, len(s.Members), len(s.Attendance))
	for country, n := range model.PredictCounts(s, last) {
		fmt.Printf("  %s: %d participants\n", country, n)
	}
	fmt.Printf("actual:\n")
	for i, attended := range s.Attendance[last] {
		if attended {
			fmt.Printf("  member %d from %s\n", s.Members[i].ID, s.Members[i].Country)
		}
	}
}
