module switchboard

go 1.22
